// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	minimize    c·x
//	subject to  a_i·x {<=,>=,=} b_i   for each constraint i
//	            x >= 0
//
// It is the substrate behind the branch-and-bound ILP solver
// (leasing/internal/ilp) used to compute exact offline optima for the
// thesis' covering problems, and it provides LP-relaxation lower bounds for
// instances too large to solve exactly. Bland's pivoting rule guarantees
// termination on degenerate problems. Maximization is expressed by negating
// the objective.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Op is a constraint comparison operator.
type Op int

// Constraint operators.
const (
	LE Op = iota + 1 // a·x <= b
	GE               // a·x >= b
	EQ               // a·x == b
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Status reports the outcome of Solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota + 1
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status    Status
	X         []float64 // variable values (valid when Status == Optimal)
	Objective float64   // c·X (valid when Status == Optimal)
}

type constraint struct {
	coeffs map[int]float64
	op     Op
	rhs    float64
}

// Problem is a linear program under construction. Create with NewMinimize,
// add constraints, then call Solve. A Problem may be solved repeatedly and
// extended between solves (each Solve works on a fresh tableau).
type Problem struct {
	c    []float64
	cons []constraint
}

// NewMinimize creates a minimization problem with objective coefficients c.
// The number of variables is len(c).
func NewMinimize(c []float64) *Problem {
	cp := make([]float64, len(c))
	copy(cp, c)
	return &Problem{c: cp}
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return len(p.c) }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// AddDense adds the constraint coeffs·x op rhs with a dense coefficient
// vector of length NumVars.
func (p *Problem) AddDense(coeffs []float64, op Op, rhs float64) error {
	if len(coeffs) != len(p.c) {
		return fmt.Errorf("lp: constraint has %d coefficients, want %d", len(coeffs), len(p.c))
	}
	m := make(map[int]float64)
	for i, v := range coeffs {
		if v != 0 {
			m[i] = v
		}
	}
	return p.addMap(m, op, rhs)
}

// Add adds the constraint sum(coeffs[j]*x_j) op rhs with sparse
// coefficients given as a variable-index map.
func (p *Problem) Add(coeffs map[int]float64, op Op, rhs float64) error {
	m := make(map[int]float64, len(coeffs))
	for j, v := range coeffs {
		if v != 0 {
			m[j] = v
		}
	}
	return p.addMap(m, op, rhs)
}

func (p *Problem) addMap(coeffs map[int]float64, op Op, rhs float64) error {
	if op != LE && op != GE && op != EQ {
		return fmt.Errorf("lp: invalid operator %v", op)
	}
	for j, v := range coeffs {
		if j < 0 || j >= len(p.c) {
			return fmt.Errorf("lp: coefficient index %d out of range [0,%d)", j, len(p.c))
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("lp: coefficient for variable %d is %v", j, v)
		}
	}
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		return fmt.Errorf("lp: right-hand side is %v", rhs)
	}
	p.cons = append(p.cons, constraint{coeffs: coeffs, op: op, rhs: rhs})
	return nil
}

const (
	pivotEps = 1e-9
	feasEps  = 1e-7
)

// Solve runs two-phase primal simplex and returns the solution. Errors are
// reserved for malformed problems; infeasibility and unboundedness are
// reported through Solution.Status.
func (p *Problem) Solve() (*Solution, error) {
	n := len(p.c)
	m := len(p.cons)
	if n == 0 {
		return &Solution{Status: Optimal, X: nil, Objective: 0}, nil
	}

	// Column layout: [0,n) structural, [n, n+nSlack) slack/surplus,
	// [n+nSlack, total) artificial. One extra column for the RHS.
	nSlack := 0
	nArt := 0
	for _, c := range p.cons {
		// Rows are normalized to b >= 0 below, so the effective operator may
		// flip; count conservatively (every row gets at most one slack and
		// at most one artificial).
		switch c.op {
		case LE, GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	total := n + nSlack + nArt
	rhsCol := total

	tab := make([][]float64, m)
	basis := make([]int, m)
	artCol := make([]bool, total)

	slackNext := n
	artNext := n + nSlack
	for i, c := range p.cons {
		row := make([]float64, total+1)
		sign := 1.0
		op := c.op
		if c.rhs < 0 {
			sign = -1
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		for j, v := range c.coeffs {
			row[j] = sign * v
		}
		row[rhsCol] = sign * c.rhs

		switch op {
		case LE:
			// Slack basic.
			row[slackNext] = 1
			basis[i] = slackNext
			slackNext++
		case GE:
			// Surplus plus artificial basic.
			row[slackNext] = -1
			slackNext++
			row[artNext] = 1
			artCol[artNext] = true
			basis[i] = artNext
			artNext++
		case EQ:
			row[artNext] = 1
			artCol[artNext] = true
			basis[i] = artNext
			artNext++
		}
		tab[i] = row
	}

	// Phase 1: minimize the sum of artificial variables.
	phase1 := make([]float64, total)
	for j := n + nSlack; j < artNext; j++ {
		phase1[j] = 1
	}
	banned := make([]bool, total)
	// Columns allocated but unused (when rows flipped fewer artificials than
	// reserved) are banned outright.
	for j := slackNext; j < n+nSlack; j++ {
		banned[j] = true
	}
	for j := artNext; j < total; j++ {
		banned[j] = true
	}

	z := buildObjectiveRow(tab, basis, phase1, total)
	if !pivotToOptimal(tab, basis, z, banned, total) {
		// Phase 1 is bounded below by 0; unboundedness indicates a numerical
		// breakdown which we report as infeasible rather than guessing.
		return &Solution{Status: Infeasible}, nil
	}
	if -z[rhsCol] > feasEps {
		return &Solution{Status: Infeasible}, nil
	}

	// Drive remaining artificial variables out of the basis.
	for i := 0; i < len(tab); i++ {
		if !artCol[basis[i]] {
			continue
		}
		pivoted := false
		for j := 0; j < n+nSlack; j++ {
			if banned[j] {
				continue
			}
			if math.Abs(tab[i][j]) > pivotEps {
				pivot(tab, z, i, j, total)
				basis[i] = j
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: all structural and slack coefficients are zero.
			// Its artificial basic variable is zero, so drop the row.
			tab = append(tab[:i], tab[i+1:]...)
			basis = append(basis[:i], basis[i+1:]...)
			i--
		}
	}
	// Ban artificial columns from ever entering again.
	for j := range artCol {
		if artCol[j] {
			banned[j] = true
		}
	}

	// Phase 2: the real objective.
	phase2 := make([]float64, total)
	copy(phase2, p.c)
	z = buildObjectiveRow(tab, basis, phase2, total)
	if !pivotToOptimal(tab, basis, z, banned, total) {
		return &Solution{Status: Unbounded}, nil
	}

	x := make([]float64, n)
	for i, b := range basis {
		if b < n {
			x[b] = tab[i][rhsCol]
		}
	}
	var obj float64
	for j := range x {
		if x[j] < 0 && x[j] > -feasEps {
			x[j] = 0
		}
		obj += p.c[j] * x[j]
	}
	return &Solution{Status: Optimal, X: x, Objective: obj}, nil
}

// buildObjectiveRow computes the reduced-cost row for cost vector cost given
// the current basis: z[j] = cost[j] - sum_i cost[basis[i]]*tab[i][j], and
// z[rhs] = -objective value.
func buildObjectiveRow(tab [][]float64, basis []int, cost []float64, total int) []float64 {
	z := make([]float64, total+1)
	copy(z, cost)
	for i, b := range basis {
		cb := cost[b]
		if cb == 0 {
			continue
		}
		row := tab[i]
		for j := 0; j <= total; j++ {
			z[j] -= cb * row[j]
		}
	}
	return z
}

// pivotToOptimal runs Bland-rule simplex iterations until no reduced cost is
// negative. It returns false if the problem is unbounded in the pivoting
// direction.
func pivotToOptimal(tab [][]float64, basis []int, z []float64, banned []bool, total int) bool {
	rhsCol := total
	for {
		// Bland: entering variable is the lowest-index column with negative
		// reduced cost.
		enter := -1
		for j := 0; j < total; j++ {
			if banned[j] {
				continue
			}
			if z[j] < -pivotEps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return true
		}
		// Ratio test with Bland tie-breaking on the basis variable index.
		leave := -1
		var bestRatio float64
		for i := range tab {
			a := tab[i][enter]
			if a <= pivotEps {
				continue
			}
			r := tab[i][rhsCol] / a
			if leave < 0 || r < bestRatio-pivotEps || (math.Abs(r-bestRatio) <= pivotEps && basis[i] < basis[leave]) {
				leave = i
				bestRatio = r
			}
		}
		if leave < 0 {
			return false
		}
		pivot(tab, z, leave, enter, total)
		basis[leave] = enter
	}
}

// pivot performs a full tableau pivot on (row, col), including the z row.
func pivot(tab [][]float64, z []float64, row, col, total int) {
	pr := tab[row]
	pv := pr[col]
	inv := 1 / pv
	for j := 0; j <= total; j++ {
		pr[j] *= inv
	}
	pr[col] = 1 // exact
	for i := range tab {
		if i == row {
			continue
		}
		f := tab[i][col]
		if f == 0 {
			continue
		}
		r := tab[i]
		for j := 0; j <= total; j++ {
			r[j] -= f * pr[j]
		}
		r[col] = 0 // exact
	}
	if f := z[col]; f != 0 {
		for j := 0; j <= total; j++ {
			z[j] -= f * pr[j]
		}
		z[col] = 0
	}
}

// TruncateConstraints drops every constraint after the first n, enabling
// cheap push/pop workflows: branch and bound appends fixing rows, solves,
// and truncates back instead of rebuilding the problem.
func (p *Problem) TruncateConstraints(n int) error {
	if n < 0 || n > len(p.cons) {
		return fmt.Errorf("lp: truncate to %d with %d constraints", n, len(p.cons))
	}
	p.cons = p.cons[:n]
	return nil
}

// ConstraintView is a read-only copy of one constraint, used by consumers
// (such as the branch-and-bound solver) that replay a problem's constraints
// onto derived problems.
type ConstraintView struct {
	Coeffs map[int]float64
	Op     Op
	RHS    float64
}

// Snapshot returns copies of all constraints added so far.
func (p *Problem) Snapshot() []ConstraintView {
	out := make([]ConstraintView, len(p.cons))
	for i, c := range p.cons {
		coeffs := make(map[int]float64, len(c.coeffs))
		for j, v := range c.coeffs {
			coeffs[j] = v
		}
		out[i] = ConstraintView{Coeffs: coeffs, Op: c.op, RHS: c.rhs}
	}
	return out
}

// Verify checks that x satisfies every constraint of p within tol, returning
// a descriptive error for the first violation. It is used by tests and by
// the ILP solver to validate incumbents.
func (p *Problem) Verify(x []float64, tol float64) error {
	if len(x) != len(p.c) {
		return fmt.Errorf("lp: solution has %d values, want %d", len(x), len(p.c))
	}
	for j, v := range x {
		if v < -tol {
			return fmt.Errorf("lp: variable %d negative: %v", j, v)
		}
	}
	for i, c := range p.cons {
		var lhs float64
		for j, v := range c.coeffs {
			lhs += v * x[j]
		}
		switch c.op {
		case LE:
			if lhs > c.rhs+tol {
				return fmt.Errorf("lp: constraint %d violated: %v <= %v", i, lhs, c.rhs)
			}
		case GE:
			if lhs < c.rhs-tol {
				return fmt.Errorf("lp: constraint %d violated: %v >= %v", i, lhs, c.rhs)
			}
		case EQ:
			if math.Abs(lhs-c.rhs) > tol {
				return fmt.Errorf("lp: constraint %d violated: %v == %v", i, lhs, c.rhs)
			}
		}
	}
	return nil
}

// ErrNotOptimal is returned by helpers that require an optimal solution.
var ErrNotOptimal = errors.New("lp: problem has no optimal solution")

// MustObjective solves p and returns the optimal objective, or an error if
// the problem is infeasible or unbounded.
func (p *Problem) MustObjective() (float64, error) {
	s, err := p.Solve()
	if err != nil {
		return 0, err
	}
	if s.Status != Optimal {
		return 0, fmt.Errorf("%w: status %v", ErrNotOptimal, s.Status)
	}
	return s.Objective, nil
}
