// Package sim provides the thin orchestration layer shared by the
// experiment harness, the benchmarks and the CLI tools: repeated-trial
// runners with per-trial seeds, ratio aggregation, and plain-text table
// rendering for the paper-style outputs.
package sim

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"leasing/internal/stats"
)

// Trial runs one seeded trial and returns the online cost and the baseline
// (usually OPT) it is compared against.
type Trial func(rng *rand.Rand) (online, baseline float64, err error)

// Ratios runs `trials` seeded trials and summarizes the online/baseline
// ratios. Trials whose baseline is zero (empty instances) are skipped; if
// every trial is skipped an error is returned.
func Ratios(trials int, baseSeed int64, trial Trial) (stats.Summary, error) {
	if trials < 1 {
		return stats.Summary{}, fmt.Errorf("sim: trials must be >= 1, got %d", trials)
	}
	ratios := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		rng := rand.New(rand.NewSource(baseSeed + int64(i)*7919))
		online, baseline, err := trial(rng)
		if err != nil {
			return stats.Summary{}, fmt.Errorf("sim: trial %d: %w", i, err)
		}
		if baseline <= 0 {
			continue
		}
		ratios = append(ratios, online/baseline)
	}
	s, err := stats.Summarize(ratios)
	if err != nil {
		return stats.Summary{}, fmt.Errorf("sim: no trial produced a positive baseline: %w", err)
	}
	return s, nil
}

// Table is a printable experiment result: a title, column headers and rows
// of pre-formatted cells.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// AddRow appends one row; the cell count must match the columns.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.Columns) {
		return fmt.Errorf("sim: row has %d cells, want %d", len(cells), len(t.Columns))
	}
	t.Rows = append(t.Rows, cells)
	return nil
}

// MustAddRow is AddRow for rows constructed from matching format calls; it
// panics on programmer error (cell-count mismatch).
func (t *Table) MustAddRow(cells ...string) {
	if err := t.AddRow(cells...); err != nil {
		panic(err)
	}
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// F formats a float for table cells with three decimals.
func F(v float64) string { return fmt.Sprintf("%.3f", v) }

// D formats an integer for table cells.
func D(v int) string { return fmt.Sprintf("%d", v) }

// D64 formats an int64 for table cells.
func D64(v int64) string { return fmt.Sprintf("%d", v) }
