// Package sim provides the thin orchestration layer shared by the
// experiment harness, the benchmarks and the CLI tools: repeated-trial
// runners that fan trials out across a deterministic worker pool,
// ratio aggregation, and plain-text and Markdown table rendering for
// the paper-style outputs.
package sim

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"leasing/internal/stats"
)

// Trial runs one seeded trial and returns the online cost and the baseline
// (usually OPT) it is compared against.
type Trial func(rng *rand.Rand) (online, baseline float64, err error)

// IndexedTrial is a Trial that also receives its zero-based trial index.
// Runners that need per-trial side data (an auxiliary metric next to the
// ratio) write it into a slot indexed by i, which stays deterministic no
// matter how trials are scheduled across workers.
type IndexedTrial func(i int, rng *rand.Rand) (online, baseline float64, err error)

// seedStride spaces per-trial seeds so neighbouring trials never share a
// source; it is part of the output contract (changing it changes every
// regenerated table).
const seedStride = 7919

// TrialSeed returns the seed of trial i under base seed baseSeed. The
// engine derives every trial's generator from this, so results are a pure
// function of (baseSeed, i) and independent of the worker count.
func TrialSeed(baseSeed int64, i int) int64 {
	return baseSeed + int64(i)*seedStride
}

// Ratios runs `trials` seeded trials across a worker pool sized to
// GOMAXPROCS and summarizes the online/baseline ratios. Trials whose
// baseline is zero (empty instances) are skipped; if every trial is
// skipped an error is returned. The trial function must be safe for
// concurrent use; use RatiosWorkers(trials, seed, 1, trial) to force
// sequential execution.
func Ratios(trials int, baseSeed int64, trial Trial) (stats.Summary, error) {
	return RatiosWorkers(trials, baseSeed, 0, trial)
}

// RatiosWorkers is Ratios with an explicit worker count. workers <= 0
// selects GOMAXPROCS. The summary is identical for every worker count:
// each trial draws from its own TrialSeed-derived generator and results
// are aggregated in trial order.
func RatiosWorkers(trials int, baseSeed int64, workers int, trial Trial) (stats.Summary, error) {
	return RatiosIndexed(trials, baseSeed, workers, func(_ int, rng *rand.Rand) (float64, float64, error) {
		return trial(rng)
	})
}

// RatiosIndexed is RatiosWorkers for IndexedTrial functions. It is the
// engine underneath the other two entry points: trials are claimed from a
// shared counter by `workers` goroutines, every result lands in a slot
// indexed by its trial number, and aggregation walks the slots in order —
// so the summary (and any error) is byte-for-byte reproducible for any
// worker count. Every trial runs even when one fails; the lowest-indexed
// failing trial is then reported, like a sequential scan would.
func RatiosIndexed(trials int, baseSeed int64, workers int, trial IndexedTrial) (stats.Summary, error) {
	if trials < 1 {
		return stats.Summary{}, fmt.Errorf("sim: trials must be >= 1, got %d", trials)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}

	type result struct {
		online, baseline float64
		err              error
	}
	results := make([]result, trials)

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= trials {
					return
				}
				rng := rand.New(rand.NewSource(TrialSeed(baseSeed, i)))
				online, baseline, err := trial(i, rng)
				results[i] = result{online: online, baseline: baseline, err: err}
			}
		}()
	}
	wg.Wait()

	ratios := make([]float64, 0, trials)
	for i, r := range results {
		if r.err != nil {
			return stats.Summary{}, fmt.Errorf("sim: trial %d: %w", i, r.err)
		}
		if r.baseline <= 0 {
			continue
		}
		ratios = append(ratios, r.online/r.baseline)
	}
	s, err := stats.Summarize(ratios)
	if err != nil {
		return stats.Summary{}, fmt.Errorf("sim: no trial produced a positive baseline: %w", err)
	}
	return s, nil
}

// Table is a printable experiment result: a title, column headers and rows
// of pre-formatted cells.
type Table struct {
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// AddRow appends one row; the cell count must match the columns.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.Columns) {
		return fmt.Errorf("sim: row has %d cells, want %d", len(cells), len(t.Columns))
	}
	t.Rows = append(t.Rows, cells)
	return nil
}

// MustAddRow is AddRow for rows constructed from matching format calls; it
// panics on programmer error (cell-count mismatch).
func (t *Table) MustAddRow(cells ...string) {
	if err := t.AddRow(cells...); err != nil {
		panic(err)
	}
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// Markdown renders the table as a GitHub-flavored Markdown table (columns,
// separator, rows, then the note as an emphasized trailing line). The
// title is not rendered; document generators place their own headings.
// Cells are escaped so `|` never breaks a row.
func (t *Table) Markdown(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, cell := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(cell, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "\n*%s*\n", t.Note)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// F formats a float for table cells with three decimals.
func F(v float64) string { return fmt.Sprintf("%.3f", v) }

// D formats an integer for table cells.
func D(v int) string { return fmt.Sprintf("%d", v) }

// D64 formats an int64 for table cells.
func D64(v int64) string { return fmt.Sprintf("%d", v) }
