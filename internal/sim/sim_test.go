package sim

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestRatios(t *testing.T) {
	s, err := Ratios(10, 1, func(rng *rand.Rand) (float64, float64, error) {
		return 6, 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 10 || math.Abs(s.Mean-3) > 1e-12 {
		t.Errorf("summary = %+v, want mean 3 over 10", s)
	}
}

func TestRatiosSkipsZeroBaseline(t *testing.T) {
	n := 0
	s, err := Ratios(6, 1, func(rng *rand.Rand) (float64, float64, error) {
		n++
		if n%2 == 0 {
			return 1, 0, nil // skipped
		}
		return 4, 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 {
		t.Errorf("N = %d, want 3 (half skipped)", s.N)
	}
}

func TestRatiosErrors(t *testing.T) {
	if _, err := Ratios(0, 1, nil); err == nil {
		t.Error("trials=0 accepted")
	}
	wantErr := errors.New("boom")
	if _, err := Ratios(3, 1, func(rng *rand.Rand) (float64, float64, error) {
		return 0, 0, wantErr
	}); !errors.Is(err, wantErr) {
		t.Errorf("error = %v, want wrapped boom", err)
	}
	if _, err := Ratios(3, 1, func(rng *rand.Rand) (float64, float64, error) {
		return 1, 0, nil
	}); err == nil {
		t.Error("all-skipped trials accepted")
	}
}

func TestRatiosSeedsDiffer(t *testing.T) {
	var draws []float64
	_, err := Ratios(5, 42, func(rng *rand.Rand) (float64, float64, error) {
		draws = append(draws, rng.Float64())
		return 1, 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 1; i < len(draws); i++ {
		if draws[i] != draws[0] {
			same = false
		}
	}
	if same {
		t.Error("all trials drew identical randomness (seeds not varied)")
	}
}

func TestTable(t *testing.T) {
	tb := &Table{Title: "demo", Note: "a note", Columns: []string{"K", "ratio"}}
	if err := tb.AddRow("1", "2.000"); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddRow("only-one"); err == nil {
		t.Error("short row accepted")
	}
	tb.MustAddRow("10", "3.500")
	var buf bytes.Buffer
	if err := tb.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== demo ==", "K", "ratio", "2.000", "3.500", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456) != "1.235" {
		t.Errorf("F = %s", F(1.23456))
	}
	if D(7) != "7" || D64(9) != "9" {
		t.Error("D/D64 wrong")
	}
}
