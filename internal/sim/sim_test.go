package sim

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
)

func TestRatios(t *testing.T) {
	s, err := Ratios(10, 1, func(rng *rand.Rand) (float64, float64, error) {
		return 6, 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 10 || math.Abs(s.Mean-3) > 1e-12 {
		t.Errorf("summary = %+v, want mean 3 over 10", s)
	}
}

func TestRatiosSkipsZeroBaseline(t *testing.T) {
	s, err := RatiosIndexed(6, 1, 0, func(i int, rng *rand.Rand) (float64, float64, error) {
		if i%2 == 1 {
			return 1, 0, nil // skipped
		}
		return 4, 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 {
		t.Errorf("N = %d, want 3 (half skipped)", s.N)
	}
}

func TestRatiosErrors(t *testing.T) {
	if _, err := Ratios(0, 1, nil); err == nil {
		t.Error("trials=0 accepted")
	}
	wantErr := errors.New("boom")
	if _, err := Ratios(3, 1, func(rng *rand.Rand) (float64, float64, error) {
		return 0, 0, wantErr
	}); !errors.Is(err, wantErr) {
		t.Errorf("error = %v, want wrapped boom", err)
	}
	if _, err := Ratios(3, 1, func(rng *rand.Rand) (float64, float64, error) {
		return 1, 0, nil
	}); err == nil {
		t.Error("all-skipped trials accepted")
	}
}

// TestRatiosReportsLowestFailingTrial pins the deterministic error
// contract: with several failing trials, the lowest index is reported no
// matter how workers schedule them.
func TestRatiosReportsLowestFailingTrial(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := RatiosIndexed(8, 1, workers, func(i int, rng *rand.Rand) (float64, float64, error) {
			if i >= 3 {
				return 0, 0, errors.New("trial failed")
			}
			return 2, 1, nil
		})
		if err == nil || !strings.Contains(err.Error(), "trial 3") {
			t.Errorf("workers=%d: error = %v, want trial 3 reported", workers, err)
		}
	}
}

func TestRatiosSeedsDiffer(t *testing.T) {
	var mu sync.Mutex
	draws := make([]float64, 5)
	_, err := RatiosIndexed(5, 42, 0, func(i int, rng *rand.Rand) (float64, float64, error) {
		v := rng.Float64()
		mu.Lock()
		draws[i] = v
		mu.Unlock()
		return 1, 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 1; i < len(draws); i++ {
		if draws[i] != draws[0] {
			same = false
		}
	}
	if same {
		t.Error("all trials drew identical randomness (seeds not varied)")
	}
}

// noisyTrial consumes a trial-dependent amount of randomness so that any
// engine change that reorders or reseeds trials shifts the summary.
func noisyTrial(i int, rng *rand.Rand) (float64, float64, error) {
	n := 1 + rng.Intn(64)
	var online float64
	for j := 0; j < n; j++ {
		online += rng.Float64()
	}
	if rng.Float64() < 0.1 {
		return 1, 0, nil // occasional skipped trial
	}
	return online, 1 + rng.Float64(), nil
}

// TestRatiosWorkerCountInvariance is the engine's core guarantee: the
// rendered table is byte-identical for worker counts 1, 4 and GOMAXPROCS
// at a fixed seed.
func TestRatiosWorkerCountInvariance(t *testing.T) {
	render := func(workers int) string {
		s, err := RatiosIndexed(64, 2015, workers, noisyTrial)
		if err != nil {
			t.Fatal(err)
		}
		tb := &Table{
			Title:   "worker invariance",
			Columns: []string{"n", "mean", "stddev", "min", "max", "p50", "p90", "ci95"},
		}
		tb.MustAddRow(D(s.N), F(s.Mean), F(s.StdDev), F(s.Min), F(s.Max), F(s.P50), F(s.P90), F(s.CI95))
		var buf bytes.Buffer
		if err := tb.Fprint(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	want := render(1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0), 0} {
		if got := render(workers); got != want {
			t.Errorf("workers=%d table differs from sequential:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

// TestRatiosWorkerCountInvarianceExact checks the stronger property the
// tables rely on: not just formatted output but the exact float summary is
// independent of the worker count.
func TestRatiosWorkerCountInvarianceExact(t *testing.T) {
	base, err := RatiosIndexed(48, 7, 1, noisyTrial)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 5, 16} {
		s, err := RatiosIndexed(48, 7, workers, noisyTrial)
		if err != nil {
			t.Fatal(err)
		}
		if s != base {
			t.Errorf("workers=%d summary %+v differs from sequential %+v", workers, s, base)
		}
	}
}

func TestTrialSeed(t *testing.T) {
	if TrialSeed(10, 0) != 10 {
		t.Errorf("TrialSeed(10, 0) = %d", TrialSeed(10, 0))
	}
	if TrialSeed(10, 2) != 10+2*seedStride {
		t.Errorf("TrialSeed(10, 2) = %d", TrialSeed(10, 2))
	}
}

func TestTable(t *testing.T) {
	tb := &Table{Title: "demo", Note: "a note", Columns: []string{"K", "ratio"}}
	if err := tb.AddRow("1", "2.000"); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddRow("only-one"); err == nil {
		t.Error("short row accepted")
	}
	tb.MustAddRow("10", "3.500")
	var buf bytes.Buffer
	if err := tb.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== demo ==", "K", "ratio", "2.000", "3.500", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := &Table{Title: "demo", Note: "a note", Columns: []string{"K", "ratio"}}
	tb.MustAddRow("1", "2.000")
	tb.MustAddRow("a|b", "3.500")
	var buf bytes.Buffer
	if err := tb.Markdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"| K | ratio |",
		"| --- | --- |",
		"| 1 | 2.000 |",
		`| a\|b | 3.500 |`,
		"*a note*",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "demo") {
		t.Errorf("markdown should not render the title:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456) != "1.235" {
		t.Errorf("F = %s", F(1.23456))
	}
	if D(7) != "7" || D64(9) != "9" {
		t.Error("D/D64 wrong")
	}
}
