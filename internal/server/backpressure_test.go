package server_test

// Sustained-backpressure parity: a deliberately starved engine (one
// shard, queue depth 1) is rammed by concurrent tenants through the
// real client, so nearly every submit round-trips through a 429 with a
// partial accepted count. The check is exactness under that stress —
// every tenant's processed count matches what it sent (no duplicates
// from re-submitting an accepted prefix, no drops from skipping an
// unaccepted suffix), and each recorded run stays byte-identical to a
// single-threaded Replay. This is the load-ramp failure mode the
// leaseload -ramp harness leans on: past the knee, correctness must
// degrade to waiting, never to wrong answers.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"leasing/internal/client"
	"leasing/internal/engine"
	"leasing/internal/server"
	"leasing/internal/stream"
	"leasing/internal/wire"
)

// slowLeaser delegates to the real domain leaser but naps on every
// event, so the starved queue stays full and 429s are guaranteed
// rather than a scheduling accident. Decisions are untouched — parity
// still holds.
type slowLeaser struct {
	stream.Leaser
	nap time.Duration
}

func (s slowLeaser) Observe(ev stream.Event) (stream.Decision, error) {
	time.Sleep(s.nap)
	return s.Leaser.Observe(ev)
}

// backpressureCounter counts 429 responses flowing through the client.
type backpressureCounter struct {
	base http.RoundTripper
	hits atomic.Int64
}

func (c *backpressureCounter) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := c.base.RoundTrip(req)
	if err == nil && resp.StatusCode == http.StatusTooManyRequests {
		c.hits.Add(1)
	}
	return resp, err
}

// TestSubmitExactUnderSustainedBackpressure ramps concurrent tenants
// into a starved engine and holds every session to exact ingestion and
// replay parity.
func TestSubmitExactUnderSustainedBackpressure(t *testing.T) {
	const (
		tenants = 6
		perTen  = 300
	)
	eng := engine.New(engine.Config{Shards: 1, BatchSize: 1, QueueDepth: 1, RecordRuns: true})
	ts := httptest.NewServer(server.New(eng, server.Config{
		ChunkSize: 4,
		Builder: func(r *wire.OpenRequest) (stream.Leaser, error) {
			ref, err := r.Build()
			if err != nil {
				return nil, err
			}
			return slowLeaser{Leaser: ref, nap: 20 * time.Microsecond}, nil
		},
	}))
	defer func() {
		ts.Close()
		eng.Close()
	}()

	counter := &backpressureCounter{base: http.DefaultTransport}
	cli := client.New(ts.URL, client.Options{
		Chunk:      7,
		RetryWait:  50 * time.Microsecond,
		MaxRetries: 10000,
		HTTPClient: &http.Client{Transport: counter},
	})
	ctx := context.Background()

	evs := dayEvents(times(perTen)...)
	var wg sync.WaitGroup
	errs := make([]error, tenants)
	accepted := make([]int, tenants)
	for i := 0; i < tenants; i++ {
		name := fmt.Sprintf("tenant-%d", i)
		if err := cli.Open(ctx, name, parkingOpen()); err != nil {
			t.Fatalf("%s: open: %v", name, err)
		}
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			accepted[i], errs[i] = cli.Submit(ctx, name, evs)
		}(i, name)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("tenant-%d: submit: %v", i, err)
		}
		if accepted[i] != perTen {
			t.Fatalf("tenant-%d: client reports %d accepted, want %d", i, accepted[i], perTen)
		}
	}
	if counter.hits.Load() == 0 {
		t.Fatal("no 429s observed: the engine was not starved, test proves nothing")
	}
	t.Logf("%d backpressure rejections across %d events", counter.hits.Load(), tenants*perTen)

	if err := cli.Flush(ctx, "tenant-0"); err != nil {
		t.Fatal(err)
	}

	// The replay reference: the same events through a fresh leaser,
	// single-threaded.
	sevs := make([]stream.Event, len(evs))
	for i, ev := range evs {
		sev, err := ev.Stream()
		if err != nil {
			t.Fatal(err)
		}
		sevs[i] = sev
	}
	for i := 0; i < tenants; i++ {
		name := fmt.Sprintf("tenant-%d", i)
		processed, err := cli.Processed(ctx, name)
		if err != nil {
			t.Fatalf("%s: processed: %v", name, err)
		}
		if processed != perTen {
			t.Errorf("%s: processed %d events, want exactly %d (duplicate or drop under backpressure)", name, processed, perTen)
		}
		wrun, err := cli.Result(ctx, name)
		if err != nil {
			t.Fatalf("%s: result: %v", name, err)
		}
		spec := parkingOpen()
		ref, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		want, err := stream.Replay(ref, sevs)
		if err != nil {
			t.Fatal(err)
		}
		if got, exp := fmt.Sprintf("%#v", wrun.Stream()), fmt.Sprintf("%#v", want); got != exp {
			t.Errorf("%s: run diverged from single-threaded replay under backpressure:\ngot  %s\nwant %s", name, got, exp)
		}
	}

	// The scrape agrees that the submit endpoint saw rejections.
	m, err := cli.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Events != tenants*perTen {
		t.Errorf("engine processed %d events, want %d", m.Events, tenants*perTen)
	}
}

func times(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}
