package server_test

// Cluster-mode server behavior: placement redirects, the replicate
// ingest endpoint, failover activation, and the not_clustered guard on
// single-node daemons.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"leasing/internal/engine"
	"leasing/internal/server"
	"leasing/internal/stream"
	"leasing/internal/wal"
	"leasing/internal/wire"
)

// clusterPeers is a fixed three-member ring for the redirect tests; the
// server under test claims the first slot.
var clusterPeers = []string{
	"http://node-a.invalid:8080",
	"http://node-b.invalid:8080",
	"http://node-c.invalid:8080",
}

// newHTTP serves an already-built server (the cluster tests need the
// *server.Server itself for OwnerURL).
func newHTTP(t *testing.T, srv *server.Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

// mustFollower opens a follower log in a test tempdir.
func mustFollower(t *testing.T) *wal.Log {
	t.Helper()
	l, err := wal.Open(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// tenantOwnedBy scans generated names for one the ring places on want.
func tenantOwnedBy(t *testing.T, s *server.Server, want string) string {
	t.Helper()
	for i := 0; i < 4096; i++ {
		tn := fmt.Sprintf("tenant-%04d", i)
		if s.OwnerURL(tn) == want {
			return tn
		}
	}
	t.Fatalf("no generated tenant landed on %s", want)
	return ""
}

// noFollow performs a request without following redirects.
func noFollow(t *testing.T, c call, base string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(c.method, base+c.path, bytes.NewReader(c.body))
	if err != nil {
		t.Fatal(err)
	}
	if c.contentType != "" {
		req.Header.Set("Content-Type", c.contentType)
	}
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestClusterRedirectsForeignTenants: a tenant the ring places on a
// peer is answered with a 307 to the same path and query on that peer;
// a tenant placed here is served locally.
func TestClusterRedirectsForeignTenants(t *testing.T) {
	eng := engine.New(engine.Config{Shards: 2})
	t.Cleanup(func() { eng.Close() })
	srv := server.New(eng, server.Config{Cluster: &server.ClusterConfig{
		Self: clusterPeers[0], Peers: clusterPeers, Follower: mustFollower(t),
	}})
	ts := newHTTP(t, srv)

	foreign := tenantOwnedBy(t, srv, clusterPeers[1])
	resp := noFollow(t, call{method: "POST", path: "/v1/tenants/" + foreign,
		contentType: "application/json", body: mustJSON(t, parkingOpen())}, ts.URL)
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("foreign open: status %d, want 307", resp.StatusCode)
	}
	want := clusterPeers[1] + "/v1/tenants/" + foreign
	if loc := resp.Header.Get("Location"); loc != want {
		t.Fatalf("Location = %q, want %q", loc, want)
	}

	// Query strings survive the redirect.
	resp = noFollow(t, call{method: "GET", path: "/v1/tenants/" + foreign + "/result?x=1"}, ts.URL)
	if loc := resp.Header.Get("Location"); loc != want+"/result?x=1" {
		t.Fatalf("redirect lost the query: %q", loc)
	}

	local := tenantOwnedBy(t, srv, clusterPeers[0])
	status, body := do(t, ts, call{method: "POST", path: "/v1/tenants/" + local,
		contentType: "application/json", body: mustJSON(t, parkingOpen())})
	if status != http.StatusCreated {
		t.Fatalf("local open: status %d, body %s", status, body)
	}

	// Non-tenant endpoints never redirect.
	if status, _ := do(t, ts, call{method: "GET", path: "/v1/healthz"}); status != http.StatusOK {
		t.Fatalf("health on a clustered node: status %d", status)
	}
}

// TestReplicationRequiresCluster: the replication endpoints on a
// single-node daemon answer not_clustered, mapped to 409.
func TestReplicationRequiresCluster(t *testing.T) {
	ts, _ := newService(t, engine.Config{Shards: 1}, server.Config{})
	for _, path := range []string{"/v1/replica/records", "/v1/replica/activate"} {
		status, body := do(t, ts, call{method: "POST", path: path})
		if status != http.StatusConflict || errCode(t, body) != wire.CodeNotClustered {
			t.Fatalf("%s: status %d, body %s, want 409 not_clustered", path, status, body)
		}
	}
}

// shipBody frames records the way the shipper does: binary magic, then
// one frame per record of kind byte plus payload.
func shipBody(t *testing.T, recs ...[]byte) []byte {
	t.Helper()
	body := []byte(wire.BinaryMagic)
	for _, rec := range recs {
		body = wire.AppendFrame(body, rec)
	}
	return body
}

// rec builds one shipped record: kind byte plus encoded payload.
func rec(t *testing.T, kind byte, payload []byte, err error) []byte {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	return append([]byte{kind}, payload...)
}

// streamDays converts day events to stream form for record encoding.
func streamDays(days ...int64) []stream.Event {
	out := make([]stream.Event, len(days))
	for i, d := range days {
		out[i] = stream.Event{Time: d, Payload: stream.Day{}}
	}
	return out
}

// TestReplicateThenActivateFailsOver is the in-process failover drill:
// a "primary's" records are shipped to this node's follower log, the
// activate endpoint adopts them, and the adopted session serves reads
// identical to a single-node server that ingested the same history —
// including a resumed submit after the recovered processed count.
func TestReplicateThenActivateFailsOver(t *testing.T) {
	ownWAL := mustFollower(t) // this node's own durable log
	eng := engine.New(engine.Config{Shards: 2, WAL: ownWAL})
	t.Cleanup(func() { eng.Close() })
	srv := server.New(eng, server.Config{Cluster: &server.ClusterConfig{
		Self: clusterPeers[0], Peers: clusterPeers,
		Follower: mustFollower(t), WAL: ownWAL,
	}})
	ts := newHTTP(t, srv)

	// The dead primary's history: an open and six days, shipped in two
	// batches.
	spec := mustJSON(t, parkingOpen())
	openPayload, err := wal.EncodeOpenRecord("acme", spec)
	openRec := rec(t, wal.KindOpen, openPayload, err)
	ev1, err := wal.AppendEventsRecord(nil, "acme", streamDays(0, 1, 2))
	evRec1 := rec(t, wal.KindEventsBinary, ev1, err)
	ev2, err := wal.AppendEventsRecord(nil, "acme", streamDays(3, 4, 5))
	evRec2 := rec(t, wal.KindEventsBinary, ev2, err)

	status, body := do(t, ts, call{method: "POST", path: "/v1/replica/records",
		contentType: wire.ContentTypeBinary, body: shipBody(t, openRec, evRec1)})
	if status != http.StatusOK {
		t.Fatalf("replicate: status %d, body %s", status, body)
	}
	var rr wire.ReplicateResponse
	if err := json.Unmarshal(body, &rr); err != nil || rr.Applied != 2 {
		t.Fatalf("replicate response %s, want applied 2", body)
	}
	status, body = do(t, ts, call{method: "POST", path: "/v1/replica/records",
		contentType: wire.ContentTypeBinary, body: shipBody(t, evRec2)})
	if status != http.StatusOK {
		t.Fatalf("replicate batch 2: status %d, body %s", status, body)
	}

	// Before activation the tenant is foreign here: reads redirect.
	if srv.OwnerURL("acme") != clusterPeers[0] {
		resp := noFollow(t, call{method: "GET", path: "/v1/tenants/acme/events"}, ts.URL)
		if resp.StatusCode != http.StatusTemporaryRedirect {
			t.Fatalf("pre-activation read: status %d, want 307", resp.StatusCode)
		}
	}

	status, body = do(t, ts, call{method: "POST", path: "/v1/replica/activate"})
	if status != http.StatusOK {
		t.Fatalf("activate: status %d, body %s", status, body)
	}
	var ar wire.ActivateResponse
	if err := json.Unmarshal(body, &ar); err != nil || ar.Activated != 1 {
		t.Fatalf("activate response %s, want activated 1", body)
	}

	// Idempotent: a second activation adopts nothing.
	status, body = do(t, ts, call{method: "POST", path: "/v1/replica/activate"})
	if status != http.StatusOK {
		t.Fatalf("re-activate: status %d, body %s", status, body)
	}
	if err := json.Unmarshal(body, &ar); err != nil || ar.Activated != 0 {
		t.Fatalf("re-activate response %s, want activated 0", body)
	}

	// The adopted tenant now serves locally — no redirect — and resumes:
	// processed reflects the shipped history, and further submits land.
	status, body = do(t, ts, call{method: "GET", path: "/v1/tenants/acme/events"})
	if status != http.StatusOK {
		t.Fatalf("processed: status %d, body %s", status, body)
	}
	var pr wire.EventsResponse
	if err := json.Unmarshal(body, &pr); err != nil || pr.Processed != 6 {
		t.Fatalf("processed after failover = %s, want 6", body)
	}
	status, body = do(t, ts, call{method: "POST", path: "/v1/tenants/acme/events",
		contentType: "application/json", body: mustJSON(t, dayEvents(6, 7))})
	if status != http.StatusOK {
		t.Fatalf("post-failover submit: status %d, body %s", status, body)
	}
	if status, _ := do(t, ts, call{method: "POST", path: "/v1/tenants/acme/flush"}); status != http.StatusOK {
		t.Fatalf("flush: status %d", status)
	}
	_, failoverCost := do(t, ts, call{method: "GET", path: "/v1/tenants/acme/cost"})

	// Reference: one single-node server ingests the identical history.
	ref, _ := newService(t, engine.Config{Shards: 2}, server.Config{})
	if status, body := do(t, ref, call{method: "POST", path: "/v1/tenants/acme",
		contentType: "application/json", body: spec}); status != http.StatusCreated {
		t.Fatalf("reference open: status %d, body %s", status, body)
	}
	if status, body := do(t, ref, call{method: "POST", path: "/v1/tenants/acme/events",
		contentType: "application/json", body: mustJSON(t, dayEvents(0, 1, 2, 3, 4, 5, 6, 7))}); status != http.StatusOK {
		t.Fatalf("reference submit: status %d, body %s", status, body)
	}
	if status, _ := do(t, ref, call{method: "POST", path: "/v1/tenants/acme/flush"}); status != http.StatusOK {
		t.Fatal("reference flush failed")
	}
	_, refCost := do(t, ref, call{method: "GET", path: "/v1/tenants/acme/cost"})
	if !bytes.Equal(failoverCost, refCost) {
		t.Fatalf("failover state diverged:\nfailover %s\nreference %s", failoverCost, refCost)
	}

	// Adoption pre-logged the shipped history into this node's own WAL,
	// so the tenant also survives a crash of the adopting node.
	adopted, err := ownWAL.Rescan()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sess := range adopted {
		if sess.Tenant == "acme" && len(sess.Events) >= 6 {
			found = true
		}
	}
	if !found {
		t.Fatalf("adopted history missing from the node's own WAL: %+v", adopted)
	}
}

// TestReplicateRejectsGarbage: bad magic, oversized frames and corrupt
// records are refused with bad_request and an exact applied count, and
// the follower log stays clean.
func TestReplicateRejectsGarbage(t *testing.T) {
	fl := mustFollower(t)
	eng := engine.New(engine.Config{Shards: 1})
	t.Cleanup(func() { eng.Close() })
	ts := newHTTP(t, server.New(eng, server.Config{Cluster: &server.ClusterConfig{
		Self: clusterPeers[0], Peers: clusterPeers, Follower: fl,
	}}))

	openPayload, err := wal.EncodeOpenRecord("acme", []byte(`{}`))
	good := rec(t, wal.KindOpen, openPayload, err)

	status, body := do(t, ts, call{method: "POST", path: "/v1/replica/records",
		contentType: wire.ContentTypeBinary, body: []byte("XXXX")})
	if status != http.StatusBadRequest || errCode(t, body) != wire.CodeBadRequest {
		t.Fatalf("bad magic: status %d, body %s", status, body)
	}

	// One good record, then a corrupt one: the error reports applied=1.
	bad := []byte{99, 'x'} // unknown record kind
	status, body = do(t, ts, call{method: "POST", path: "/v1/replica/records",
		contentType: wire.ContentTypeBinary, body: shipBody(t, good, bad)})
	if status != http.StatusBadRequest {
		t.Fatalf("corrupt record: status %d, body %s", status, body)
	}
	var we wire.Error
	if err := json.Unmarshal(body, &we); err != nil || we.Code != wire.CodeBadRequest || we.Accepted != 1 {
		t.Fatalf("corrupt record error %s, want bad_request with accepted 1", body)
	}

	got, err := fl.Rescan()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Tenant != "acme" {
		t.Fatalf("follower log after rejects: %+v", got)
	}
}
