package server_test

// Binary-path twin of the remote parity anchor: the same eight domain
// sessions, driven over the negotiated binary framing
// (wire.ContentTypeBinary), must land byte-identical to single-threaded
// Replay — and a session fed through a mix of JSON and binary requests
// (switching encodings across reconnects) must be indistinguishable
// from one fed through either alone, because both encodings decode to
// exactly the same stream.Event values.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"leasing/internal/client"
	"leasing/internal/engine"
	"leasing/internal/server"
	"leasing/internal/stream"
	"leasing/internal/wire"
)

func binaryParityServer(t *testing.T) (*httptest.Server, func()) {
	t.Helper()
	eng := engine.New(engine.Config{Shards: 4, BatchSize: 8, QueueDepth: 16, RecordRuns: true})
	ts := httptest.NewServer(server.New(eng, server.Config{ChunkSize: 16}))
	return ts, func() {
		ts.Close()
		eng.Close()
	}
}

// replayWant computes the two reference runs (spec-built and
// facade-built) and fails the test if they cannot be produced.
func replayWant(t *testing.T, tc remoteCase) (spec, facade string) {
	t.Helper()
	specRef, err := tc.spec.Build()
	if err != nil {
		t.Fatalf("%s: spec build: %v", tc.name, err)
	}
	specWant, err := stream.Replay(specRef, tc.events)
	if err != nil {
		t.Fatalf("%s: spec replay: %v", tc.name, err)
	}
	facadeRef, err := tc.fresh()
	if err != nil {
		t.Fatalf("%s: fresh: %v", tc.name, err)
	}
	facadeWant, err := stream.Replay(facadeRef, tc.events)
	if err != nil {
		t.Fatalf("%s: facade replay: %v", tc.name, err)
	}
	return fmt.Sprintf("%#v", specWant), fmt.Sprintf("%#v", facadeWant)
}

// TestRemoteParityBinary drives all eight domains through the binary
// submit framing — alternating the array-equivalent single-frame path
// (Submit) and the chunked multi-frame path (SubmitNDJSON) — and holds
// each binary-negotiated Result to byte-identity with Replay.
func TestRemoteParityBinary(t *testing.T) {
	cases := remoteCases(t)
	ts, shutdown := binaryParityServer(t)
	defer shutdown()
	cli := client.New(ts.URL, client.Options{Chunk: 5, Binary: true})
	ctx := context.Background()

	for _, tc := range cases {
		if err := cli.Open(ctx, tc.name, tc.spec); err != nil {
			t.Fatalf("%s: open: %v", tc.name, err)
		}
	}
	for i, tc := range cases {
		wevs, err := wire.FromStreamEvents(tc.events)
		if err != nil {
			t.Fatalf("%s: wire events: %v", tc.name, err)
		}
		if i%2 == 0 {
			if _, err := cli.Submit(ctx, tc.name, wevs); err != nil {
				t.Fatalf("%s: binary submit: %v", tc.name, err)
			}
		} else {
			if n, err := cli.SubmitNDJSON(ctx, tc.name, wevs); err != nil || n != len(wevs) {
				t.Fatalf("%s: binary chunked submit: accepted %d, err %v", tc.name, n, err)
			}
		}
	}
	if err := cli.Flush(ctx, cases[0].name); err != nil {
		t.Fatal(err)
	}

	for _, tc := range cases {
		wrun, err := cli.Result(ctx, tc.name)
		if err != nil {
			t.Fatalf("%s: binary result: %v", tc.name, err)
		}
		got := fmt.Sprintf("%#v", wrun.Stream())
		specWant, facadeWant := replayWant(t, tc)
		if got != specWant {
			t.Errorf("%s: binary-path run not byte-identical to spec-built Replay:\nremote %s\nreplay %s",
				tc.name, got, specWant)
		}
		if got != facadeWant {
			t.Errorf("%s: binary-path run not byte-identical to facade-built Replay:\nremote %s\nreplay %s",
				tc.name, got, facadeWant)
		}
		n, err := cli.Processed(ctx, tc.name)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(len(tc.events)) {
			t.Errorf("%s: processed %d events over binary, want %d", tc.name, n, len(tc.events))
		}
	}
}

// TestRemoteParityMixedEncodings interleaves JSON and binary submits
// within each session — two distinct clients, so the encodings also
// switch across connections — and checks the session cannot tell:
// the result (read through both negotiations) is byte-identical to
// Replay.
func TestRemoteParityMixedEncodings(t *testing.T) {
	cases := remoteCases(t)
	ts, shutdown := binaryParityServer(t)
	defer shutdown()
	jsonCli := client.New(ts.URL, client.Options{Chunk: 7})
	binCli := client.New(ts.URL, client.Options{Chunk: 5, Binary: true})
	ctx := context.Background()

	for _, tc := range cases {
		if err := jsonCli.Open(ctx, tc.name, tc.spec); err != nil {
			t.Fatalf("%s: open: %v", tc.name, err)
		}
	}
	for i, tc := range cases {
		wevs, err := wire.FromStreamEvents(tc.events)
		if err != nil {
			t.Fatalf("%s: wire events: %v", tc.name, err)
		}
		// Four segments, alternating encodings; stagger which encoding
		// leads per case so every switch order is exercised.
		seg := (len(wevs) + 3) / 4
		for j := 0; len(wevs) > 0; j++ {
			n := min(seg, len(wevs))
			cli := jsonCli
			if (i+j)%2 == 0 {
				cli = binCli
			}
			if _, err := cli.Submit(ctx, tc.name, wevs[:n]); err != nil {
				t.Fatalf("%s: segment %d: %v", tc.name, j, err)
			}
			wevs = wevs[n:]
		}
	}
	if err := jsonCli.Flush(ctx, cases[0].name); err != nil {
		t.Fatal(err)
	}

	for _, tc := range cases {
		specWant, _ := replayWant(t, tc)
		for name, cli := range map[string]*client.Client{"json": jsonCli, "binary": binCli} {
			wrun, err := cli.Result(ctx, tc.name)
			if err != nil {
				t.Fatalf("%s: %s result: %v", tc.name, name, err)
			}
			if got := fmt.Sprintf("%#v", wrun.Stream()); got != specWant {
				t.Errorf("%s: mixed-encoding run (read via %s) not byte-identical to Replay:\nremote %s\nreplay %s",
					tc.name, name, got, specWant)
			}
		}
	}
}

// postBinary posts raw bytes as a binary submit body and decodes the
// wire error (nil for 2xx).
func postBinary(t *testing.T, ts *httptest.Server, tenant string, body []byte) (int, *wire.Error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/tenants/"+tenant+"/events", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", wire.ContentTypeBinary)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 == 2 {
		return resp.StatusCode, nil
	}
	apiErr := &wire.Error{}
	if err := json.NewDecoder(resp.Body).Decode(apiErr); err != nil || apiErr.Code == "" {
		t.Fatalf("status %d with undecodable error body: %v", resp.StatusCode, err)
	}
	return resp.StatusCode, apiErr
}

// TestSubmitBinaryBadRequests: malformed binary bodies map to 400
// bad_request with the accepted count of whatever preceded the damage.
func TestSubmitBinaryBadRequests(t *testing.T) {
	ts, shutdown := binaryParityServer(t)
	defer shutdown()

	frame := func(evs ...wire.Event) []byte {
		payload, err := wire.AppendEventsBinaryWire(nil, evs)
		if err != nil {
			t.Fatal(err)
		}
		return wire.AppendFrame(nil, payload)
	}
	okFrame := frame(wire.Event{Time: 1, Kind: wire.KindDay})

	cases := map[string]struct {
		body     []byte
		accepted int
	}{
		"empty body":    {body: nil},
		"bad magic":     {body: []byte("JSON[...]")},
		"short magic":   {body: []byte("LE")},
		"garbage frame": {body: append([]byte(wire.BinaryMagic), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01)},
		"zero frame":    {body: append([]byte(wire.BinaryMagic), 0)},
		// The valid first frame is enqueued before the damage is seen, so
		// the error reports accepted=1 — the precise resume point.
		"truncated body": {body: append(append([]byte(wire.BinaryMagic), okFrame...), 200, 1), accepted: 1},
		"corrupt events": {body: append([]byte(wire.BinaryMagic), wire.AppendFrame(nil, []byte{1, 99, 0})...)},
		"time regression": {
			body: append([]byte(wire.BinaryMagic),
				frame(wire.Event{Time: 5, Kind: wire.KindDay}, wire.Event{Time: 3, Kind: wire.KindDay})...),
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			status, apiErr := postBinary(t, ts, "no-such-tenant", tc.body)
			if apiErr == nil {
				t.Fatalf("accepted with status %d", status)
			}
			if apiErr.Code != wire.CodeBadRequest {
				t.Errorf("code = %q, want %q (%s)", apiErr.Code, wire.CodeBadRequest, apiErr.Message)
			}
			if apiErr.Accepted != tc.accepted {
				t.Errorf("accepted = %d, want %d", apiErr.Accepted, tc.accepted)
			}
		})
	}

	// A structurally valid body for an unknown tenant is not a bad
	// request: the engine accepts and drops it, exactly like JSON.
	if status, apiErr := postBinary(t, ts, "no-such-tenant", append([]byte(wire.BinaryMagic), okFrame...)); apiErr != nil {
		t.Errorf("well-formed body rejected: %d %v", status, apiErr)
	}
}

// TestResultBinaryNegotiation: the result endpoint answers the binary
// encoding only when Accept asks for it, and the two encodings decode
// to identical runs.
func TestResultBinaryNegotiation(t *testing.T) {
	cases := remoteCases(t)
	tc := cases[0]
	ts, shutdown := binaryParityServer(t)
	defer shutdown()
	cli := client.New(ts.URL, client.Options{Chunk: 16})
	ctx := context.Background()
	if err := cli.Open(ctx, tc.name, tc.spec); err != nil {
		t.Fatal(err)
	}
	wevs, err := wire.FromStreamEvents(tc.events)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Submit(ctx, tc.name, wevs); err != nil {
		t.Fatal(err)
	}
	if err := cli.Flush(ctx, tc.name); err != nil {
		t.Fatal(err)
	}

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/tenants/"+tc.name+"/result", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", wire.ContentTypeBinary)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != wire.ContentTypeBinary {
		t.Fatalf("binary Accept answered Content-Type %q", got)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	binRun, err := wire.DecodeRunBinary(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	jsonRun, err := cli.Result(ctx, tc.name)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprintf("%#v", binRun), fmt.Sprintf("%#v", jsonRun.Stream()); got != want {
		t.Errorf("binary and JSON result encodings decode differently:\nbinary %s\njson   %s", got, want)
	}

	// Without the Accept header the response stays JSON — the default
	// and the documented source of truth.
	plain, err := ts.Client().Get(ts.URL + "/v1/tenants/" + tc.name + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Body.Close()
	if ct := plain.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("default result Content-Type = %q, want JSON", ct)
	}
}
