package server

// End-to-end allocation regression for the binary submit path: one
// request body, decoded through the pooled readers/frames/batches and
// pushed through the engine's release-hook submit, must run at
// (amortized) zero allocations per event once warm. The wire-level
// codec is pinned to exactly zero in internal/wire; this test bounds
// everything the server adds on top — pool traffic, the enqueue, the
// shard's publish — to noise.

import (
	"bytes"
	"testing"

	"leasing/internal/engine"
	"leasing/internal/stream"
	"leasing/internal/wire"
)

type nopLeaser struct{}

func (nopLeaser) Observe(stream.Event) (stream.Decision, error) { return stream.Decision{}, nil }
func (nopLeaser) Cost() stream.CostBreakdown                    { return stream.CostBreakdown{} }
func (nopLeaser) Snapshot() stream.Solution                     { return stream.Solution{} }

// submitAllocsPerEvent measures steady-state allocations per event of
// one binary submit body driven through srv.submitBinary and fully
// consumed by eng (the flush makes every release hook run before the
// next round, so pooled batches are back for reuse — the steady state a
// long-lived daemon converges to).
func submitAllocsPerEvent(t *testing.T, events int) float64 {
	t.Helper()
	eng := engine.New(engine.Config{Shards: 1, QueueDepth: 256, BatchSize: 64})
	t.Cleanup(func() { eng.Close() })
	if err := eng.Open("t", nopLeaser{}); err != nil {
		t.Fatal(err)
	}
	srv := New(eng, Config{ChunkSize: 256})

	evs := make([]stream.Event, events)
	for i := range evs {
		evs[i] = stream.Event{Time: int64(i), Payload: stream.Day{}}
	}
	payload, err := wire.AppendEventsBinary(nil, evs)
	if err != nil {
		t.Fatal(err)
	}
	body := append([]byte(wire.BinaryMagic), wire.AppendFrame(nil, payload)...)

	rd := bytes.NewReader(body)
	round := func() {
		rd.Reset(body)
		accepted := 0
		if err := srv.submitBinary(rd, "t", &accepted); err != nil {
			t.Fatal(err)
		}
		if accepted != events {
			t.Fatalf("accepted %d of %d", accepted, events)
		}
		if err := eng.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		round() // grow the arenas and pools to steady state
	}
	return testing.AllocsPerRun(20, round) / float64(events)
}

// TestSubmitBinaryAllocsPerEvent is the committed budget: the binary
// submit path must stay under 0.05 allocations per event — i.e. zero
// per event, with room only for the per-batch publish and per-request
// flush bookkeeping that amortizes away. A regression (say, a decode
// that starts boxing payloads again) blows through this by orders of
// magnitude and fails CI.
func TestSubmitBinaryAllocsPerEvent(t *testing.T) {
	const budget = 0.05
	if got := submitAllocsPerEvent(t, 4096); got > budget {
		t.Errorf("binary submit allocates %.4f per event, budget %.2f", got, budget)
	}
}
