// Package server is the HTTP/JSON serving layer over the sharded
// multi-tenant engine: it routes the endpoints declared in
// internal/wire, translates engine errors into the wire error codes,
// maps shard-queue backpressure to fail-fast 429s, scopes requests with
// per-tenant bearer tokens, and streams NDJSON event ingestion in
// bounded chunks. The handler is stateless beyond the engine it fronts,
// so graceful shutdown is the composition of http.Server.Shutdown
// (stop accepting requests) and Engine.Close (drain queued work) — the
// order cmd/leased performs on SIGINT/SIGTERM.
package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"leasing/internal/engine"
	"leasing/internal/stream"
	"leasing/internal/wal"
	"leasing/internal/wire"
)

// Config shapes a Server. The zero value serves unauthenticated with
// default chunking.
type Config struct {
	// Tokens enables auth when non-empty: it maps a bearer token to the
	// one tenant it may act for, or to "*" for the admin scope (every
	// tenant plus admin-only endpoints). With an empty map every request
	// is allowed.
	Tokens map[string]string
	// ChunkSize caps how many events one engine enqueue carries when the
	// submit body streams in (NDJSON) or exceeds the chunk. Default 512.
	ChunkSize int
	// MaxBodyBytes caps request body size. Default 64 MiB.
	MaxBodyBytes int64
	// Builder constructs a session's Leaser from an open spec; defaults
	// to the spec's own Build. Tests substitute failing builders.
	Builder func(*wire.OpenRequest) (stream.Leaser, error)
	// WALStats, when non-nil, samples the daemon's write-ahead log so
	// the Prometheus exposition of the metrics endpoint includes the
	// leased_wal_* families (cmd/leased wires it when run durable).
	WALStats func() wal.Stats
	// Cluster enables cluster mode (see cluster.go): placement
	// redirects, the replication ingest endpoint and failover
	// activation. Nil serves single-node; the replication endpoints then
	// answer not_clustered.
	Cluster *ClusterConfig
}

func (c Config) withDefaults() Config {
	if c.ChunkSize < 1 {
		c.ChunkSize = 512
	}
	if c.MaxBodyBytes < 1 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.Builder == nil {
		c.Builder = func(r *wire.OpenRequest) (stream.Leaser, error) { return r.Build() }
	}
	return c
}

// AdminScope is the Tokens value granting access to every tenant and to
// admin-only endpoints.
const AdminScope = "*"

// Server is the http.Handler of the lease service. Create one with New;
// it serves the endpoints declared by wire.Endpoints over the engine it
// fronts.
type Server struct {
	eng     *engine.Engine
	cfg     Config
	cluster *clusterState // nil when not clustered
	mux     *http.ServeMux
	reqs    []*endpointCounter // one per declared endpoint, in declaration order

	// Pools of the binary ingestion path: decoded batches live until the
	// owning shard releases them (engine.TrySubmitBatchRelease), read
	// buffers and bufio readers only for the request. Warm, the path
	// decodes at zero allocations per event.
	batches sync.Pool // *pooledBatch
	readers sync.Pool // *bufio.Reader
	frames  sync.Pool // *[]byte, frame payload scratch
	runs    sync.Pool // *[]byte, binary run response scratch
}

// pooledBatch is one poolable decode batch. Its release hook is built
// once, at allocation, so the hot loop hands the shard a prebuilt
// closure instead of allocating one per batch.
type pooledBatch struct {
	wire.EventBatch
	release func()
}

// batch takes a pooled decode batch, reset and ready to fill.
func (s *Server) batch() *pooledBatch {
	pb, _ := s.batches.Get().(*pooledBatch)
	if pb == nil {
		pb = &pooledBatch{}
		pb.release = func() { s.batches.Put(pb) }
	}
	pb.Reset()
	return pb
}

// New builds the service handler over eng. The caller keeps ownership
// of the engine: close it after the HTTP server has shut down, so
// queued work drains exactly once. An invalid Config.Cluster (bad peer
// list, self not a peer, no follower log) panics — it is a startup
// wiring error, and cmd/leased validates its flags before reaching
// here.
func New(eng *engine.Engine, cfg Config) *Server {
	s := &Server{eng: eng, cfg: cfg.withDefaults(), mux: http.NewServeMux()}
	cl, err := newClusterState(cfg.Cluster)
	if err != nil {
		panic(err.Error())
	}
	s.cluster = cl
	handlers := map[string]http.HandlerFunc{
		"open":      s.handleOpen,
		"submit":    s.handleSubmit,
		"flush":     s.handleFlush,
		"close":     s.handleClose,
		"cost":      s.handleCost,
		"events":    s.handleEvents,
		"snapshot":  s.handleSnapshot,
		"result":    s.handleResult,
		"replicate": s.handleReplicate,
		"activate":  s.handleActivate,
		"metrics":   s.handleMetrics,
		"health":    s.handleHealth,
	}
	// The route table is the wire declaration itself, so the served
	// surface cannot drift from the documented one.
	for _, ep := range wire.Endpoints() {
		h, ok := handlers[ep.Name]
		if !ok {
			panic(fmt.Sprintf("server: endpoint %q declared in wire but not implemented", ep.Name))
		}
		if strings.Contains(ep.Path, "{tenant}") {
			// Tenant-scoped endpoints route by placement in cluster mode.
			h = s.redirected(h)
		}
		c := &endpointCounter{name: ep.Name}
		s.reqs = append(s.reqs, c)
		s.mux.HandleFunc(ep.Method+" "+ep.Path, s.instrumented(c, s.authorized(ep.Auth, h)))
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	s.mux.ServeHTTP(w, r)
}

// authorized wraps a handler with the endpoint's auth scope.
func (s *Server) authorized(scope string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if len(s.cfg.Tokens) == 0 || scope == wire.AuthNone {
			h(w, r)
			return
		}
		token, ok := bearerToken(r)
		if !ok {
			writeError(w, wire.CodeUnauthorized, "missing bearer token", 0)
			return
		}
		granted, ok := s.cfg.Tokens[token]
		if !ok {
			writeError(w, wire.CodeUnauthorized, "unknown token", 0)
			return
		}
		if granted != AdminScope {
			if scope == wire.AuthAdmin {
				writeError(w, wire.CodeForbidden, "admin token required", 0)
				return
			}
			if tenant := r.PathValue("tenant"); tenant != granted {
				writeError(w, wire.CodeForbidden,
					fmt.Sprintf("token is scoped to tenant %q", granted), 0)
				return
			}
		}
		h(w, r)
	}
}

func bearerToken(r *http.Request) (string, bool) {
	auth := r.Header.Get("Authorization")
	token, ok := strings.CutPrefix(auth, "Bearer ")
	return token, ok && token != ""
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code, message string, accepted int) {
	writeJSON(w, wire.HTTPStatus(code), &wire.Error{Code: code, Message: message, Accepted: accepted})
}

// writeEngineError maps an engine error onto the wire error codes.
func writeEngineError(w http.ResponseWriter, err error, accepted int) {
	code := wire.CodeSessionFailed
	switch {
	case errors.Is(err, engine.ErrClosed):
		code = wire.CodeShuttingDown
	case errors.Is(err, engine.ErrUnknownTenant):
		code = wire.CodeUnknownTenant
	case errors.Is(err, engine.ErrDuplicateTenant):
		code = wire.CodeDuplicateTenant
	case errors.Is(err, engine.ErrTenantClosed):
		code = wire.CodeTenantClosed
	case errors.Is(err, engine.ErrBackpressure):
		code = wire.CodeBackpressure
	case errors.Is(err, engine.ErrNotRecording):
		code = wire.CodeNotRecording
	case errors.Is(err, engine.ErrWAL):
		code = wire.CodeStorageFailed
	}
	writeError(w, code, err.Error(), accepted)
}

func (s *Server) handleOpen(w http.ResponseWriter, r *http.Request) {
	tenant := r.PathValue("tenant")
	var req wire.OpenRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, wire.CodeBadRequest, "decode open request: "+err.Error(), 0)
		return
	}
	lsr, err := s.cfg.Builder(&req)
	if err != nil {
		writeError(w, wire.CodeBadRequest, "build session: "+err.Error(), 0)
		return
	}
	// The re-marshaled (canonical) spec rides along so a durable engine
	// can log it: recovery rebuilds the session from exactly these bytes
	// through the same wire.OpenRequest.Build mapping.
	spec, err := json.Marshal(&req)
	if err != nil {
		writeError(w, wire.CodeBadRequest, "encode open spec: "+err.Error(), 0)
		return
	}
	if err := s.eng.OpenSpec(tenant, lsr, spec); err != nil {
		writeEngineError(w, err, 0)
		return
	}
	writeJSON(w, http.StatusCreated, wire.OpenResponse{Tenant: tenant, Domain: req.Domain})
}

// handleSubmit ingests events: a JSON array by default, one event per
// line with Content-Type application/x-ndjson, or length-prefixed
// binary frames with Content-Type application/x-lease-binary — the
// zero-alloc path, decoding straight into pooled stream.Event batches.
// All three enqueue in ChunkSize chunks while the body streams in, and
// backpressure fails fast with the accepted count so callers can resume
// precisely.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant := r.PathValue("tenant")
	accepted := 0
	push := func(chunk []stream.Event) error {
		if len(chunk) == 0 {
			return nil
		}
		if err := s.eng.TrySubmitBatch(tenant, chunk); err != nil {
			return err
		}
		accepted += len(chunk)
		return nil
	}

	var err error
	switch mediaType(r) {
	case "application/x-ndjson":
		err = s.submitNDJSON(r.Body, push)
	case wire.ContentTypeBinary:
		err = s.submitBinary(r.Body, tenant, &accepted)
	default:
		err = s.submitArray(r.Body, push)
	}
	if err != nil {
		var badReq *badRequestError
		if errors.As(err, &badReq) {
			writeError(w, wire.CodeBadRequest, badReq.Error(), accepted)
		} else {
			writeEngineError(w, err, accepted)
		}
		return
	}
	writeJSON(w, http.StatusOK, wire.SubmitResponse{Accepted: accepted})
}

type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

func mediaType(r *http.Request) string {
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(strings.ToLower(ct))
}

func (s *Server) submitArray(body io.Reader, push func([]stream.Event) error) error {
	var wevs []wire.Event
	if err := json.NewDecoder(body).Decode(&wevs); err != nil {
		return &badRequestError{"decode event array: " + err.Error()}
	}
	evs, err := wire.StreamEvents(wevs)
	if err != nil {
		return &badRequestError{err.Error()}
	}
	// Fail a within-request time regression fast, before anything is
	// enqueued. (A regression relative to an earlier request is only
	// seen by the shard and surfaces as an asynchronous session
	// failure — see the submit endpoint's documented semantics.)
	for i := 1; i < len(evs); i++ {
		if evs[i].Time < evs[i-1].Time {
			return &badRequestError{fmt.Sprintf(
				"event %d (t=%d) precedes event %d (t=%d)", i, evs[i].Time, i-1, evs[i-1].Time)}
		}
	}
	for len(evs) > 0 {
		n := min(s.cfg.ChunkSize, len(evs))
		if err := push(evs[:n:n]); err != nil {
			return err
		}
		evs = evs[n:]
	}
	return nil
}

func (s *Server) submitNDJSON(body io.Reader, push func([]stream.Event) error) error {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	chunk := make([]stream.Event, 0, s.cfg.ChunkSize)
	line, seen := 0, 0
	var last int64
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var wev wire.Event
		if err := json.Unmarshal([]byte(raw), &wev); err != nil {
			return &badRequestError{fmt.Sprintf("ndjson line %d: %v", line, err)}
		}
		ev, err := wev.Stream()
		if err != nil {
			return &badRequestError{fmt.Sprintf("ndjson line %d: %v", line, err)}
		}
		// Same within-request order check as the array path; prior
		// chunks of this request may already be enqueued, so the error
		// reports the accepted count for precise resumption.
		if seen > 0 && ev.Time < last {
			return &badRequestError{fmt.Sprintf(
				"ndjson line %d: event time %d precedes %d", line, ev.Time, last)}
		}
		last = ev.Time
		seen++
		chunk = append(chunk, ev)
		if len(chunk) == s.cfg.ChunkSize {
			if err := push(chunk); err != nil {
				return err
			}
			chunk = make([]stream.Event, 0, s.cfg.ChunkSize)
		}
	}
	if err := sc.Err(); err != nil {
		return &badRequestError{"read ndjson body: " + err.Error()}
	}
	return push(chunk)
}

// submitBinary ingests a binary submit body: the magic, then
// length-prefixed frames decoded into pooled event batches and enqueued
// in ChunkSize chunks as they arrive. Each enqueued batch is recycled
// only when its owning shard releases it, so the arenas the events
// point into are never reused under a shard still applying them.
func (s *Server) submitBinary(body io.Reader, tenant string, accepted *int) error {
	br, _ := s.readers.Get().(*bufio.Reader)
	if br == nil {
		br = bufio.NewReaderSize(body, 64*1024)
	} else {
		br.Reset(body)
	}
	defer s.readers.Put(br)

	var magic [len(wire.BinaryMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return &badRequestError{"read binary magic: " + err.Error()}
	}
	if string(magic[:]) != wire.BinaryMagic {
		return &badRequestError{fmt.Sprintf("bad binary magic %q", magic[:])}
	}

	framep, _ := s.frames.Get().(*[]byte)
	if framep == nil {
		framep = new([]byte)
	}
	defer s.frames.Put(framep)

	seen := 0
	var last int64
	for {
		n, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return nil // clean end of body between frames
		}
		if err != nil {
			return &badRequestError{"read frame length: " + err.Error()}
		}
		if n == 0 || n > wire.MaxFrameBytes {
			return &badRequestError{fmt.Sprintf("frame of %d bytes out of range", n)}
		}
		if uint64(cap(*framep)) < n {
			*framep = make([]byte, n)
		}
		frame := (*framep)[:n]
		if _, err := io.ReadFull(br, frame); err != nil {
			return &badRequestError{"read frame: " + err.Error()}
		}
		var er wire.EventReader
		if err := er.Init(frame); err != nil {
			return &badRequestError{err.Error()}
		}
		for er.Remaining() > 0 {
			eb := s.batch()
			if _, err := er.Next(&eb.EventBatch, s.cfg.ChunkSize); err != nil {
				s.batches.Put(eb)
				return &badRequestError{err.Error()}
			}
			// Same within-request order check as the JSON paths; prior
			// chunks may already be enqueued, so the error carries the
			// accepted count for precise resumption.
			for _, ev := range eb.Events {
				if seen > 0 && ev.Time < last {
					s.batches.Put(eb)
					return &badRequestError{fmt.Sprintf(
						"event %d (t=%d) precedes its predecessor (t=%d)", seen, ev.Time, last)}
				}
				last = ev.Time
				seen++
			}
			n := len(eb.Events)
			if n == 0 {
				s.batches.Put(eb)
				continue
			}
			if err := s.eng.TrySubmitBatchRelease(tenant, eb.Events, eb.release); err != nil {
				// Nothing was enqueued, so the release hook will not run;
				// the batch is ours to recycle.
				s.batches.Put(eb)
				return err
			}
			*accepted += n
		}
	}
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if err := s.eng.Flush(); err != nil {
		writeEngineError(w, err, 0)
		return
	}
	writeJSON(w, http.StatusOK, wire.FlushResponse{Flushed: true})
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	tenant := r.PathValue("tenant")
	if err := s.eng.CloseTenant(tenant); err != nil {
		writeEngineError(w, err, 0)
		return
	}
	// CloseTenant is a per-tenant barrier, so these reads see finals.
	// A failed session still closes successfully: Cost and Events
	// return the state at failure alongside the session error, and the
	// close response reports those finals (the failure itself stays
	// visible on the session's ordinary reads).
	cost, err := s.eng.Cost(tenant)
	if err != nil && errors.Is(err, engine.ErrUnknownTenant) {
		writeEngineError(w, err, 0)
		return
	}
	events, err := s.eng.Events(tenant)
	if err != nil && errors.Is(err, engine.ErrUnknownTenant) {
		writeEngineError(w, err, 0)
		return
	}
	writeJSON(w, http.StatusOK, wire.CloseResponse{
		Tenant: tenant, Events: events, Cost: wire.FromStreamCost(cost),
	})
}

func (s *Server) handleCost(w http.ResponseWriter, r *http.Request) {
	cost, err := s.eng.Cost(r.PathValue("tenant"))
	if err != nil {
		writeEngineError(w, err, 0)
		return
	}
	writeJSON(w, http.StatusOK, wire.FromStreamCost(cost))
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	n, err := s.eng.Events(r.PathValue("tenant"))
	if err != nil {
		writeEngineError(w, err, 0)
		return
	}
	writeJSON(w, http.StatusOK, wire.EventsResponse{Processed: n})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	sol, err := s.eng.Snapshot(r.PathValue("tenant"))
	if err != nil {
		writeEngineError(w, err, 0)
		return
	}
	writeJSON(w, http.StatusOK, wire.FromStreamSolution(sol))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	run, err := s.eng.Result(r.PathValue("tenant"))
	if err != nil {
		writeEngineError(w, err, 0)
		return
	}
	// Accept negotiation: the binary run encoding on request, JSON (the
	// default and documented form) otherwise.
	if strings.Contains(r.Header.Get("Accept"), wire.ContentTypeBinary) {
		bufp, _ := s.runs.Get().(*[]byte)
		if bufp == nil {
			bufp = new([]byte)
		}
		*bufp = wire.AppendRunBinary((*bufp)[:0], run)
		w.Header().Set("Content-Type", wire.ContentTypeBinary)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(*bufp)
		s.runs.Put(bufp)
		return
	}
	writeJSON(w, http.StatusOK, wire.FromStreamRun(run))
}

// handleMetrics serves the engine counters: JSON by default, the
// Prometheus text exposition (engine + WAL + HTTP families) when the
// request asks for text/plain or ?format=prometheus.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r) {
		s.serveMetricsText(w)
		return
	}
	writeJSON(w, http.StatusOK, wire.FromEngineMetrics(s.eng.Metrics()))
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, wire.HealthResponse{Status: "ok"})
}
