package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"leasing/internal/engine"
	"leasing/internal/server"
	"leasing/internal/stream"
	"leasing/internal/wire"
)

func newService(t *testing.T, ecfg engine.Config, scfg server.Config) (*httptest.Server, *engine.Engine) {
	t.Helper()
	eng := engine.New(ecfg)
	ts := httptest.NewServer(server.New(eng, scfg))
	t.Cleanup(func() {
		ts.Close()
		eng.Close()
	})
	return ts, eng
}

type call struct {
	method, path, contentType, token string
	body                             []byte
}

func do(t *testing.T, ts *httptest.Server, c call) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(c.method, ts.URL+c.path, bytes.NewReader(c.body))
	if err != nil {
		t.Fatal(err)
	}
	if c.contentType != "" {
		req.Header.Set("Content-Type", c.contentType)
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func parkingOpen() wire.OpenRequest {
	return wire.OpenRequest{
		Domain: wire.DomainParking,
		Types:  []wire.LeaseType{{Length: 1, Cost: 1}, {Length: 4, Cost: 2.5}, {Length: 16, Cost: 6}},
	}
}

func dayEvents(days ...int64) []wire.Event {
	out := make([]wire.Event, len(days))
	for i, d := range days {
		out[i] = wire.Event{Time: d, Kind: wire.KindDay}
	}
	return out
}

func errCode(t *testing.T, body []byte) string {
	t.Helper()
	var e wire.Error
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("decode error body %q: %v", body, err)
	}
	return e.Code
}

// TestSessionLifecycle walks one tenant through open, submit (array
// form), flush, reads and close, checking bodies and status codes.
func TestSessionLifecycle(t *testing.T) {
	ts, _ := newService(t, engine.Config{Shards: 2, RecordRuns: true}, server.Config{})

	status, body := do(t, ts, call{method: "POST", path: "/v1/tenants/acme",
		contentType: "application/json", body: mustJSON(t, parkingOpen())})
	if status != http.StatusCreated {
		t.Fatalf("open: status %d, body %s", status, body)
	}

	status, body = do(t, ts, call{method: "POST", path: "/v1/tenants/acme/events",
		contentType: "application/json", body: mustJSON(t, dayEvents(0, 1, 2, 3))})
	if status != http.StatusOK {
		t.Fatalf("submit: status %d, body %s", status, body)
	}
	var sub wire.SubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil || sub.Accepted != 4 {
		t.Fatalf("submit response %s (err %v), want accepted 4", body, err)
	}

	if status, body = do(t, ts, call{method: "POST", path: "/v1/tenants/acme/flush"}); status != http.StatusOK {
		t.Fatalf("flush: status %d, body %s", status, body)
	}

	status, body = do(t, ts, call{method: "GET", path: "/v1/tenants/acme/cost"})
	if status != http.StatusOK {
		t.Fatalf("cost: status %d", status)
	}
	var cost wire.CostBreakdown
	if err := json.Unmarshal(body, &cost); err != nil || cost.Total != 4.5 {
		t.Fatalf("cost %s (err %v), want total 4.5", body, err)
	}

	status, body = do(t, ts, call{method: "GET", path: "/v1/tenants/acme/events"})
	var evs wire.EventsResponse
	if status != http.StatusOK || json.Unmarshal(body, &evs) != nil || evs.Processed != 4 {
		t.Fatalf("events: status %d body %s, want 4 processed", status, body)
	}

	status, body = do(t, ts, call{method: "GET", path: "/v1/tenants/acme/result"})
	var run wire.Run
	if status != http.StatusOK || json.Unmarshal(body, &run) != nil || len(run.Decisions) != 4 {
		t.Fatalf("result: status %d body %s, want 4 decisions", status, body)
	}

	status, body = do(t, ts, call{method: "GET", path: "/v1/tenants/acme/snapshot"})
	var sol wire.Solution
	if status != http.StatusOK || json.Unmarshal(body, &sol) != nil || len(sol.Leases) == 0 {
		t.Fatalf("snapshot: status %d body %s, want leases", status, body)
	}

	status, body = do(t, ts, call{method: "DELETE", path: "/v1/tenants/acme"})
	var closed wire.CloseResponse
	if status != http.StatusOK || json.Unmarshal(body, &closed) != nil {
		t.Fatalf("close: status %d body %s", status, body)
	}
	if closed.Events != 4 || closed.Cost.Total != 4.5 {
		t.Errorf("close reports %+v, want 4 events / total 4.5", closed)
	}

	// Closing again conflicts; reads still serve the final state.
	status, body = do(t, ts, call{method: "DELETE", path: "/v1/tenants/acme"})
	if status != http.StatusConflict || errCode(t, body) != wire.CodeTenantClosed {
		t.Errorf("double close: status %d body %s", status, body)
	}
	if status, _ = do(t, ts, call{method: "GET", path: "/v1/tenants/acme/cost"}); status != http.StatusOK {
		t.Errorf("post-close cost read: status %d", status)
	}
}

// TestNDJSONSubmit streams events line by line, including a blank line
// and a trailing unterminated line.
func TestNDJSONSubmit(t *testing.T) {
	ts, _ := newService(t, engine.Config{Shards: 1}, server.Config{ChunkSize: 2})
	do(t, ts, call{method: "POST", path: "/v1/tenants/acme",
		contentType: "application/json", body: mustJSON(t, parkingOpen())})

	body := `{"time":0,"kind":"day"}
{"time":1,"kind":"day"}

{"time":5,"kind":"day"}`
	status, respBody := do(t, ts, call{method: "POST", path: "/v1/tenants/acme/events",
		contentType: "application/x-ndjson; charset=utf-8", body: []byte(body)})
	if status != http.StatusOK {
		t.Fatalf("ndjson submit: status %d body %s", status, respBody)
	}
	var sub wire.SubmitResponse
	if json.Unmarshal(respBody, &sub) != nil || sub.Accepted != 3 {
		t.Fatalf("ndjson response %s, want accepted 3", respBody)
	}
	do(t, ts, call{method: "POST", path: "/v1/tenants/acme/flush"})
	status, respBody = do(t, ts, call{method: "GET", path: "/v1/tenants/acme/events"})
	var evs wire.EventsResponse
	if status != http.StatusOK || json.Unmarshal(respBody, &evs) != nil || evs.Processed != 3 {
		t.Fatalf("processed %s, want 3", respBody)
	}
}

// TestSubmitErrors covers the 400 paths.
func TestSubmitErrors(t *testing.T) {
	ts, _ := newService(t, engine.Config{Shards: 1}, server.Config{})
	do(t, ts, call{method: "POST", path: "/v1/tenants/acme",
		contentType: "application/json", body: mustJSON(t, parkingOpen())})

	status, body := do(t, ts, call{method: "POST", path: "/v1/tenants/acme/events",
		contentType: "application/json", body: []byte(`{"not":"an array"}`)})
	if status != http.StatusBadRequest || errCode(t, body) != wire.CodeBadRequest {
		t.Errorf("bad array: status %d body %s", status, body)
	}

	status, body = do(t, ts, call{method: "POST", path: "/v1/tenants/acme/events",
		contentType: "application/json", body: []byte(`[{"time":0,"kind":"teleport"}]`)})
	if status != http.StatusBadRequest || errCode(t, body) != wire.CodeBadRequest {
		t.Errorf("bad kind: status %d body %s", status, body)
	}

	status, body = do(t, ts, call{method: "POST", path: "/v1/tenants/acme/events",
		contentType: "application/x-ndjson", body: []byte("{nope}")})
	if status != http.StatusBadRequest || errCode(t, body) != wire.CodeBadRequest {
		t.Errorf("bad ndjson: status %d body %s", status, body)
	}
}

// TestOpenErrors covers bad specs and duplicate tenants.
func TestOpenErrors(t *testing.T) {
	ts, _ := newService(t, engine.Config{Shards: 1}, server.Config{})

	status, body := do(t, ts, call{method: "POST", path: "/v1/tenants/acme",
		contentType: "application/json", body: []byte(`{"domain":"warehouse"}`)})
	if status != http.StatusBadRequest || errCode(t, body) != wire.CodeBadRequest {
		t.Errorf("bad domain: status %d body %s", status, body)
	}

	open := mustJSON(t, parkingOpen())
	if status, body = do(t, ts, call{method: "POST", path: "/v1/tenants/acme",
		contentType: "application/json", body: open}); status != http.StatusCreated {
		t.Fatalf("open: status %d body %s", status, body)
	}
	status, body = do(t, ts, call{method: "POST", path: "/v1/tenants/acme",
		contentType: "application/json", body: open})
	if status != http.StatusConflict || errCode(t, body) != wire.CodeDuplicateTenant {
		t.Errorf("duplicate open: status %d body %s", status, body)
	}
}

// TestUnknownTenantReads map to 404. (The engine reports a disabled
// recorder before looking tenants up, so the service runs with
// recording here to probe the unknown-tenant path of every read.)
func TestUnknownTenantReads(t *testing.T) {
	ts, _ := newService(t, engine.Config{Shards: 1, RecordRuns: true}, server.Config{})
	for _, path := range []string{
		"/v1/tenants/ghost/cost", "/v1/tenants/ghost/events",
		"/v1/tenants/ghost/snapshot", "/v1/tenants/ghost/result",
	} {
		status, body := do(t, ts, call{method: "GET", path: path})
		if status != http.StatusNotFound || errCode(t, body) != wire.CodeUnknownTenant {
			t.Errorf("%s: status %d body %s", path, status, body)
		}
	}
	status, body := do(t, ts, call{method: "DELETE", path: "/v1/tenants/ghost"})
	if status != http.StatusNotFound || errCode(t, body) != wire.CodeUnknownTenant {
		t.Errorf("close ghost: status %d body %s", status, body)
	}
}

// TestResultWithoutRecording maps to 409 not_recording.
func TestResultWithoutRecording(t *testing.T) {
	ts, _ := newService(t, engine.Config{Shards: 1}, server.Config{})
	do(t, ts, call{method: "POST", path: "/v1/tenants/acme",
		contentType: "application/json", body: mustJSON(t, parkingOpen())})
	status, body := do(t, ts, call{method: "GET", path: "/v1/tenants/acme/result"})
	if status != http.StatusConflict || errCode(t, body) != wire.CodeNotRecording {
		t.Errorf("result without -record: status %d body %s", status, body)
	}
}

// TestTimeRegressionWithinRequest is rejected synchronously with 400
// before anything is enqueued.
func TestTimeRegressionWithinRequest(t *testing.T) {
	ts, _ := newService(t, engine.Config{Shards: 1}, server.Config{})
	do(t, ts, call{method: "POST", path: "/v1/tenants/acme",
		contentType: "application/json", body: mustJSON(t, parkingOpen())})
	status, body := do(t, ts, call{method: "POST", path: "/v1/tenants/acme/events",
		contentType: "application/json", body: mustJSON(t, dayEvents(9, 3))})
	if status != http.StatusBadRequest || errCode(t, body) != wire.CodeBadRequest {
		t.Errorf("in-request regression: status %d body %s", status, body)
	}
	// Nothing was enqueued, so the session is untouched.
	do(t, ts, call{method: "POST", path: "/v1/tenants/acme/flush"})
	if status, _ := do(t, ts, call{method: "GET", path: "/v1/tenants/acme/cost"}); status != http.StatusOK {
		t.Errorf("session poisoned by rejected request: status %d", status)
	}
}

// TestSessionFailure: a time regression across separate requests is
// only seen asynchronously by the shard; it poisons the session and
// reads surface session_failed — but close still reports the finals.
func TestSessionFailure(t *testing.T) {
	ts, _ := newService(t, engine.Config{Shards: 1}, server.Config{})
	do(t, ts, call{method: "POST", path: "/v1/tenants/acme",
		contentType: "application/json", body: mustJSON(t, parkingOpen())})
	do(t, ts, call{method: "POST", path: "/v1/tenants/acme/events",
		contentType: "application/json", body: mustJSON(t, dayEvents(9))})
	do(t, ts, call{method: "POST", path: "/v1/tenants/acme/events",
		contentType: "application/json", body: mustJSON(t, dayEvents(3))})
	do(t, ts, call{method: "POST", path: "/v1/tenants/acme/flush"})
	status, body := do(t, ts, call{method: "GET", path: "/v1/tenants/acme/cost"})
	if status != http.StatusInternalServerError || errCode(t, body) != wire.CodeSessionFailed {
		t.Errorf("failed session read: status %d body %s", status, body)
	}
	// Closing a failed session succeeds and reports the pre-failure
	// finals instead of eating the close.
	status, body = do(t, ts, call{method: "DELETE", path: "/v1/tenants/acme"})
	var closed wire.CloseResponse
	if status != http.StatusOK || json.Unmarshal(body, &closed) != nil {
		t.Fatalf("close of failed session: status %d body %s", status, body)
	}
	if closed.Events != 1 || closed.Cost.Total != 1 {
		t.Errorf("close reports %+v, want 1 event / total 1 (state at failure)", closed)
	}
}

// TestBackpressure: a tiny queue on an engine whose shard is wedged
// behind a slow open returns 429 with the accepted count.
func TestBackpressure(t *testing.T) {
	ts, _ := newService(t, engine.Config{Shards: 1, QueueDepth: 1, BatchSize: 1}, server.Config{ChunkSize: 1})
	do(t, ts, call{method: "POST", path: "/v1/tenants/acme",
		contentType: "application/json", body: mustJSON(t, parkingOpen())})

	// Wedge the shard: a leaser that blocks until released.
	release := make(chan struct{})
	eng2 := engine.New(engine.Config{Shards: 1, QueueDepth: 1, BatchSize: 1})
	defer eng2.Close()
	srv2 := httptest.NewServer(server.New(eng2, server.Config{ChunkSize: 1, Builder: func(r *wire.OpenRequest) (stream.Leaser, error) {
		return &blockingLeaser{release: release}, nil
	}}))
	defer srv2.Close()
	do(t, srv2, call{method: "POST", path: "/v1/tenants/slow",
		contentType: "application/json", body: mustJSON(t, parkingOpen())})

	// Fill: first event wedges the shard, next fills the queue, then
	// submits must 429. Accepted counts must be reported on the way.
	saw429 := false
	accepted := 0
	for i := 0; i < 20 && !saw429; i++ {
		status, body := do(t, srv2, call{method: "POST", path: "/v1/tenants/slow/events",
			contentType: "application/json", body: mustJSON(t, dayEvents(int64(i)))})
		switch status {
		case http.StatusOK:
			accepted++
		case http.StatusTooManyRequests:
			saw429 = true
			var e wire.Error
			if err := json.Unmarshal(body, &e); err != nil || e.Code != wire.CodeBackpressure {
				t.Fatalf("429 body %s (err %v)", body, err)
			}
		default:
			t.Fatalf("unexpected status %d body %s", status, body)
		}
	}
	if !saw429 {
		t.Fatal("queue never backpressured")
	}
	if accepted == 0 {
		t.Fatal("nothing accepted before backpressure")
	}
	close(release) // unwedge so Cleanup's eng2.Close drains
}

type blockingLeaser struct {
	release <-chan struct{}
	once    bool
}

func (b *blockingLeaser) Observe(stream.Event) (stream.Decision, error) {
	if !b.once {
		b.once = true
		<-b.release
	}
	return stream.Decision{}, nil
}
func (b *blockingLeaser) Cost() stream.CostBreakdown { return stream.CostBreakdown{} }
func (b *blockingLeaser) Snapshot() stream.Solution  { return stream.Solution{} }

// TestAuth exercises token scoping: missing, unknown, wrong-tenant,
// tenant-scoped, and admin tokens.
func TestAuth(t *testing.T) {
	ts, _ := newService(t, engine.Config{Shards: 1}, server.Config{
		Tokens: map[string]string{"acme-token": "acme", "root-token": server.AdminScope},
	})

	status, body := do(t, ts, call{method: "POST", path: "/v1/tenants/acme",
		contentType: "application/json", body: mustJSON(t, parkingOpen())})
	if status != http.StatusUnauthorized || errCode(t, body) != wire.CodeUnauthorized {
		t.Errorf("no token: status %d body %s", status, body)
	}

	status, body = do(t, ts, call{method: "POST", path: "/v1/tenants/acme", token: "wrong",
		contentType: "application/json", body: mustJSON(t, parkingOpen())})
	if status != http.StatusUnauthorized || errCode(t, body) != wire.CodeUnauthorized {
		t.Errorf("unknown token: status %d body %s", status, body)
	}

	status, body = do(t, ts, call{method: "POST", path: "/v1/tenants/globex", token: "acme-token",
		contentType: "application/json", body: mustJSON(t, parkingOpen())})
	if status != http.StatusForbidden || errCode(t, body) != wire.CodeForbidden {
		t.Errorf("cross-tenant token: status %d body %s", status, body)
	}

	if status, body = do(t, ts, call{method: "POST", path: "/v1/tenants/acme", token: "acme-token",
		contentType: "application/json", body: mustJSON(t, parkingOpen())}); status != http.StatusCreated {
		t.Errorf("tenant token open: status %d body %s", status, body)
	}

	status, body = do(t, ts, call{method: "GET", path: "/v1/metrics", token: "acme-token"})
	if status != http.StatusForbidden || errCode(t, body) != wire.CodeForbidden {
		t.Errorf("metrics with tenant token: status %d body %s", status, body)
	}
	if status, _ = do(t, ts, call{method: "GET", path: "/v1/metrics", token: "root-token"}); status != http.StatusOK {
		t.Errorf("metrics with admin token: status %d", status)
	}
	if status, _ = do(t, ts, call{method: "POST", path: "/v1/tenants/globex", token: "root-token",
		contentType: "application/json", body: mustJSON(t, parkingOpen())}); status != http.StatusCreated {
		t.Errorf("admin token open: status %d", status)
	}
	// Health stays open.
	if status, _ = do(t, ts, call{method: "GET", path: "/v1/healthz"}); status != http.StatusOK {
		t.Errorf("healthz with auth enabled: status %d", status)
	}
}

// TestMetrics aggregates shard counters over HTTP.
func TestMetrics(t *testing.T) {
	ts, _ := newService(t, engine.Config{Shards: 3}, server.Config{})
	do(t, ts, call{method: "POST", path: "/v1/tenants/acme",
		contentType: "application/json", body: mustJSON(t, parkingOpen())})
	do(t, ts, call{method: "POST", path: "/v1/tenants/acme/events",
		contentType: "application/json", body: mustJSON(t, dayEvents(0, 1, 2))})
	do(t, ts, call{method: "POST", path: "/v1/tenants/acme/flush"})

	status, body := do(t, ts, call{method: "GET", path: "/v1/metrics"})
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	var m wire.Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.Sessions != 1 || m.Events != 3 || len(m.Shards) != 3 {
		t.Errorf("metrics %+v, want 1 session / 3 events / 3 shards", m)
	}
}

// TestShutdownMapsToServiceUnavailable: operations on a closed engine
// return 503 shutting_down (the drain window behavior).
func TestShutdownMapsToServiceUnavailable(t *testing.T) {
	eng := engine.New(engine.Config{Shards: 1})
	ts := httptest.NewServer(server.New(eng, server.Config{}))
	defer ts.Close()
	eng.Close()
	status, body := do(t, ts, call{method: "POST", path: "/v1/tenants/acme",
		contentType: "application/json", body: mustJSON(t, parkingOpen())})
	if status != http.StatusServiceUnavailable || errCode(t, body) != wire.CodeShuttingDown {
		t.Errorf("open after close: status %d body %s", status, body)
	}
	status, body = do(t, ts, call{method: "POST", path: "/v1/tenants/acme/events",
		contentType: "application/json", body: mustJSON(t, dayEvents(0))})
	if status != http.StatusServiceUnavailable || errCode(t, body) != wire.CodeShuttingDown {
		t.Errorf("submit after close: status %d body %s", status, body)
	}
}

// TestRoutesMatchDeclarations drives one request per declared endpoint
// and asserts none of them 404s at the mux level — the route table
// really is wire.Endpoints.
func TestRoutesMatchDeclarations(t *testing.T) {
	ts, _ := newService(t, engine.Config{Shards: 1}, server.Config{})
	for _, ep := range wire.Endpoints() {
		path := strings.ReplaceAll(ep.Path, "{tenant}", "probe")
		status, body := do(t, ts, call{method: ep.Method, path: path,
			contentType: "application/json", body: []byte("[]")})
		if status == http.StatusNotFound && errCode(t, body) != wire.CodeUnknownTenant {
			t.Errorf("%s %s: unrouted (404 without unknown_tenant body: %s)", ep.Method, ep.Path, body)
		}
		if status == http.StatusMethodNotAllowed {
			t.Errorf("%s %s: method not allowed", ep.Method, ep.Path)
		}
	}
}
