package server

// In-package tests of the Prometheus exposition. prometheusFamilies is
// pure in its inputs, so the golden file pins the scrape byte for byte:
// renaming a metric, changing a type, or dropping a family diffs
// against testdata/metrics.golden and fails here before it breaks a
// dashboard. Refresh deliberately with:
//
//	go test ./internal/server/ -run TestPrometheusGolden -update
//
// The negotiation test drives the real endpoint over HTTP and parses
// the scrape back with promtext, closing the round trip.

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"leasing/internal/cluster"
	"leasing/internal/engine"
	"leasing/internal/promtext"
	"leasing/internal/wal"
)

var update = flag.Bool("update", false, "rewrite testdata golden files")

// goldenInputs is a fixed sample of every exposition input: a two-shard
// engine snapshot, WAL counters, shipper counters, and per-endpoint
// HTTP counters.
func goldenInputs() (engine.Metrics, *wal.Stats, *cluster.ShipperStats, []endpointSample) {
	m := engine.Metrics{
		Shards: []engine.ShardMetrics{
			{Shard: 0, Sessions: 2, Events: 9000, Batches: 120, Dropped: 1, QueueDepth: 3, Cost: 7611.25},
			{Shard: 1, Sessions: 1, Events: 5761, Batches: 96, Dropped: 0, QueueDepth: 0, Cost: 4347.703594820541},
		},
		Sessions:   3,
		Events:     14761,
		Batches:    216,
		Dropped:    1,
		QueueDepth: 3,
		Cost:       11958.953594820541,
	}
	ws := &wal.Stats{Appends: 14761, Syncs: 310, Compactions: 2, CompactionFailures: 0, Segment: 4, SegmentBytes: 65536}
	ss := &cluster.ShipperStats{Shipped: 14761, Batches: 73, Dropped: 5, FailedPeers: []string{"http://node3:8080"}}
	eps := []endpointSample{
		{name: "open", requests: 3, failed: 0},
		{name: "submit", requests: 250, failed: 12},
		{name: "metrics", requests: 40, failed: 0},
	}
	return m, ws, ss, eps
}

// TestPrometheusGolden pins the full exposition — engine, WAL, shipper,
// and HTTP families — against the committed golden file.
func TestPrometheusGolden(t *testing.T) {
	m, ws, ss, eps := goldenInputs()
	text, err := promtext.Encode(prometheusFamilies(m, ws, ss, eps))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.WriteFile(path, text, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(text, want) {
		t.Fatalf("exposition drifted from %s (rerun with -update if deliberate):\n--- got ---\n%s\n--- want ---\n%s", path, text, want)
	}
}

// TestPrometheusRoundTrip: the exposition parses back to exactly the
// families that produced it, so the golden bytes are also semantically
// well formed (names, types, help, label sets).
func TestPrometheusRoundTrip(t *testing.T) {
	m, ws, ss, eps := goldenInputs()
	fams := prometheusFamilies(m, ws, ss, eps)
	text, err := promtext.Encode(fams)
	if err != nil {
		t.Fatal(err)
	}
	back, err := promtext.Parse(text)
	if err != nil {
		t.Fatalf("own exposition does not parse: %v\n%s", err, text)
	}
	if len(back) != len(fams) {
		t.Fatalf("round trip: %d families in, %d out", len(fams), len(back))
	}
	for i := range fams {
		if back[i].Name != fams[i].Name || back[i].Type != fams[i].Type {
			t.Errorf("family %d: got %s/%s, want %s/%s", i, back[i].Name, back[i].Type, fams[i].Name, fams[i].Type)
		}
	}
}

// TestPrometheusOmitsWALWithoutHook: a non-durable daemon has no WAL
// and an unclustered one no shipper, so its scrape must not report
// frozen leased_wal_* or leased_shipper_* zeros.
func TestPrometheusOmitsWALWithoutHook(t *testing.T) {
	m, _, _, eps := goldenInputs()
	text, err := promtext.Encode(prometheusFamilies(m, nil, nil, eps))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(text), "leased_wal_") {
		t.Fatalf("WAL families present without a stats hook:\n%s", text)
	}
	if strings.Contains(string(text), "leased_shipper_") {
		t.Fatalf("shipper families present without a stats hook:\n%s", text)
	}
}

// TestMetricsContentNegotiation drives the live endpoint: JSON stays the
// default, Accept: text/plain and ?format=prometheus switch to the text
// exposition, and the scrape includes the server's own request counters.
func TestMetricsContentNegotiation(t *testing.T) {
	eng := engine.New(engine.Config{Shards: 2})
	srv := New(eng, Config{WALStats: func() wal.Stats {
		return wal.Stats{Appends: 7, Syncs: 7, Segment: 1}
	}})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); eng.Close() })

	get := func(path, accept string) (string, string) {
		t.Helper()
		req, err := http.NewRequest("GET", ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	if body, ct := get("/v1/metrics", ""); !strings.HasPrefix(ct, "application/json") || !strings.Contains(body, `"shards"`) {
		t.Errorf("default scrape not JSON: ct %q body %s", ct, body)
	}
	// A browser-style Accept that lists application/json first keeps JSON.
	if _, ct := get("/v1/metrics", "application/json, text/plain;q=0.5"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("json-preferring Accept got ct %q", ct)
	}
	for _, req := range []struct{ path, accept string }{
		{"/v1/metrics", "text/plain"},
		{"/v1/metrics", "application/openmetrics-text; version=1.0.0"},
		{"/v1/metrics?format=prometheus", ""},
	} {
		body, ct := get(req.path, req.accept)
		if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
			t.Fatalf("%s (Accept %q): content type %q", req.path, req.accept, ct)
		}
		fams, err := promtext.Parse([]byte(body))
		if err != nil {
			t.Fatalf("%s: scrape does not parse: %v\n%s", req.path, err, body)
		}
		names := map[string]bool{}
		for _, f := range fams {
			names[f.Name] = true
		}
		for _, want := range []string{"leased_engine_events_total", "leased_wal_appends_total", "leased_http_requests_total", "leased_http_errors_total"} {
			if !names[want] {
				t.Errorf("%s: scrape missing family %s", req.path, want)
			}
		}
	}

	// The endpoint counters actually count: the scrapes above all hit the
	// metrics endpoint, and an unauthorized open lands in errors_total.
	srv2 := New(eng, Config{Tokens: map[string]string{"root": AdminScope}})
	ts2 := httptest.NewServer(srv2)
	t.Cleanup(ts2.Close)
	resp, err := http.Post(ts2.URL+"/v1/tenants/acme", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless open: status %d", resp.StatusCode)
	}
	samples := srv2.endpointSamples()
	var open endpointSample
	for _, s := range samples {
		if s.name == "open" {
			open = s
		}
	}
	if open.requests != 1 || open.failed != 1 {
		t.Errorf("open counters after rejected request: %+v", open)
	}
}
