package server_test

// Remote determinism anchor: for every domain leaser, a session driven
// through the HTTP service — opened from a wire spec, events submitted
// over the network by the real client — must yield a Result
// byte-identical to a single-threaded stream.Replay. Two references are
// compared: a leaser built from the same wire spec (the documented
// reproducibility contract of the open endpoint) and a leaser built
// directly through the root facade (proving spec construction and
// facade construction are the same algorithm).

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"

	"leasing"
	"leasing/internal/client"
	"leasing/internal/engine"
	"leasing/internal/server"
	"leasing/internal/stream"
	"leasing/internal/wire"
)

// remoteCase is one domain: the wire spec that opens it remotely, the
// event stream, and a facade-built reference leaser factory.
type remoteCase struct {
	name   string
	spec   wire.OpenRequest
	events []stream.Event
	fresh  func() (stream.Leaser, error)
}

func remoteCases(t *testing.T) []remoteCase {
	t.Helper()
	cfg, err := leasing.NewLeaseConfig(
		leasing.LeaseType{Length: 1, Cost: 1},
		leasing.LeaseType{Length: 4, Cost: 2},
		leasing.LeaseType{Length: 16, Cost: 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	types := wire.ConfigTypes(cfg)
	var cases []remoteCase

	var days []int64
	dayRng := rand.New(rand.NewSource(1))
	for tm := int64(0); tm < 120; tm++ {
		if dayRng.Float64() < 0.4 {
			days = append(days, tm)
		}
	}
	cases = append(cases, remoteCase{
		name:   "parking",
		spec:   wire.OpenRequest{Domain: wire.DomainParking, Types: types},
		events: leasing.DayEvents(days),
		fresh: func() (stream.Leaser, error) {
			alg, err := leasing.NewDeterministicParkingPermit(cfg)
			if err != nil {
				return nil, err
			}
			return leasing.NewParkingStream(alg), nil
		},
	})
	cases = append(cases, remoteCase{
		name:   "parking-rand",
		spec:   wire.OpenRequest{Domain: wire.DomainParkingRand, Types: types, Seed: 11},
		events: leasing.DayEvents(days),
		fresh: func() (stream.Leaser, error) {
			alg, err := leasing.NewRandomizedParkingPermit(cfg, rand.New(rand.NewSource(11)))
			if err != nil {
				return nil, err
			}
			return leasing.NewParkingStream(alg), nil
		},
	})

	wRng := rand.New(rand.NewSource(2))
	var windows []leasing.DeadlineClient
	for tm := int64(0); tm < 100; tm++ {
		if wRng.Float64() < 0.4 {
			windows = append(windows, leasing.DeadlineClient{T: tm, D: int64(wRng.Intn(8))})
		}
	}
	cases = append(cases, remoteCase{
		name:   "deadline",
		spec:   wire.OpenRequest{Domain: wire.DomainDeadline, Types: types},
		events: leasing.WindowEvents(windows),
		fresh:  func() (stream.Leaser, error) { return leasing.NewDeadlineStream(cfg) },
	})

	sets := [][]int{{0, 1, 2}, {2, 3}, {3, 4, 5}, {0, 5}, {1, 4}}
	scCosts := [][]float64{{1, 2, 5}, {1.5, 2.5, 4}, {1, 2, 5}, {2, 3, 6}, {1, 1.8, 4.4}}
	scRng := rand.New(rand.NewSource(3))
	var scArrivals []leasing.ElementArrival
	for tm := int64(0); tm < 90; tm++ {
		if scRng.Float64() < 0.5 {
			scArrivals = append(scArrivals, leasing.ElementArrival{
				T: tm, Elem: scRng.Intn(6), P: 1 + scRng.Intn(2)})
		}
	}
	fam, err := leasing.NewSetFamily(6, sets)
	if err != nil {
		t.Fatal(err)
	}
	scInst, err := leasing.NewSetCoverInstance(fam, cfg, scCosts, scArrivals, leasing.PerArrival)
	if err != nil {
		t.Fatal(err)
	}
	warr := make([]wire.ElementArrival, len(scArrivals))
	for i, a := range scArrivals {
		warr[i] = wire.ElementArrival{T: a.T, Elem: a.Elem, P: a.P}
	}
	cases = append(cases, remoteCase{
		name: "setcover",
		spec: wire.OpenRequest{
			Domain: wire.DomainSetCover, Types: types, Seed: 7,
			SetCover: &wire.SetCoverSpec{Elements: 6, Sets: sets, Costs: scCosts, Arrivals: warr},
		},
		events: leasing.ElementEvents(scArrivals),
		fresh: func() (stream.Leaser, error) {
			return leasing.NewSetCoverStream(scInst, rand.New(rand.NewSource(7)))
		},
	})

	scldRng := rand.New(rand.NewSource(8))
	var scldArrivals []leasing.SCLDArrival
	for tm := int64(0); tm < 80; tm++ {
		if scldRng.Float64() < 0.4 {
			scldArrivals = append(scldArrivals, leasing.SCLDArrival{
				T: tm, Elem: scldRng.Intn(4), D: int64(scldRng.Intn(5))})
		}
	}
	scldSets := [][]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}}
	scldCosts := [][]float64{{1, 2, 4}, {1, 2, 4}, {1, 2, 4}, {1, 2, 4}}
	scldFam, err := leasing.NewSetFamily(4, scldSets)
	if err != nil {
		t.Fatal(err)
	}
	scldInst, err := leasing.NewSCLDInstance(scldFam, cfg, scldCosts, scldArrivals)
	if err != nil {
		t.Fatal(err)
	}
	scldWarr := make([]wire.SCLDArrival, len(scldArrivals))
	for i, a := range scldArrivals {
		scldWarr[i] = wire.SCLDArrival{T: a.T, Elem: a.Elem, D: a.D}
	}
	cases = append(cases, remoteCase{
		name: "scld",
		spec: wire.OpenRequest{
			Domain: wire.DomainSCLD, Types: types, Seed: 9,
			SCLD: &wire.SCLDSpec{Elements: 4, Sets: scldSets, Costs: scldCosts, Arrivals: scldWarr},
		},
		events: leasing.ElementWindowEvents(scldArrivals),
		fresh: func() (stream.Leaser, error) {
			return leasing.NewSCLDStream(scldInst, rand.New(rand.NewSource(9)))
		},
	})

	facRng := rand.New(rand.NewSource(6))
	sites := []leasing.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 5, Y: 8}}
	facCosts := [][]float64{{1, 2, 5}, {1, 2, 5}, {1.5, 3, 6}}
	batches := make([][]leasing.Point, 40)
	for i := range batches {
		for c := facRng.Intn(3); c > 0; c-- {
			s := sites[facRng.Intn(len(sites))]
			batches[i] = append(batches[i], leasing.Point{
				X: s.X + facRng.Float64()*2, Y: s.Y + facRng.Float64()*2})
		}
	}
	facInst, err := leasing.NewFacilityInstance(cfg, sites, facCosts, batches)
	if err != nil {
		t.Fatal(err)
	}
	wSites := make([]wire.Point, len(sites))
	for i, p := range sites {
		wSites[i] = wire.Point{X: p.X, Y: p.Y}
	}
	wBatches := make([][]wire.Point, len(batches))
	for i, b := range batches {
		if b == nil {
			continue
		}
		wBatches[i] = make([]wire.Point, len(b))
		for j, p := range b {
			wBatches[i][j] = wire.Point{X: p.X, Y: p.Y}
		}
	}
	cases = append(cases, remoteCase{
		name: "facility",
		spec: wire.OpenRequest{
			Domain: wire.DomainFacility, Types: types,
			Facility: &wire.FacilitySpec{Sites: wSites, Costs: facCosts, Batches: wBatches},
		},
		events: leasing.BatchEvents(batches),
		fresh:  func() (stream.Leaser, error) { return leasing.NewFacilityStream(facInst) },
	})

	g, err := leasing.RandomConnectedGraph(rand.New(rand.NewSource(10)), 12, 24, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	stRng := rand.New(rand.NewSource(12))
	var reqs []leasing.SteinerRequest
	for tm := int64(0); tm < 90; tm++ {
		if stRng.Float64() < 0.5 {
			s := stRng.Intn(12)
			u := stRng.Intn(11)
			if u >= s {
				u++
			}
			reqs = append(reqs, leasing.SteinerRequest{Time: tm, S: s, T: u})
		}
	}
	stInst, err := leasing.NewSteinerInstance(g, cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	wEdges := make([]wire.Edge, g.M())
	for i, e := range g.Edges() {
		wEdges[i] = wire.Edge{U: e.U, V: e.V, W: e.Weight}
	}
	wReqs := make([]wire.ConnectRequest, len(reqs))
	for i, r := range reqs {
		wReqs[i] = wire.ConnectRequest{T: r.Time, S: r.S, U: r.T}
	}
	cases = append(cases, remoteCase{
		name: "steiner",
		spec: wire.OpenRequest{
			Domain: wire.DomainSteiner, Types: types,
			Steiner: &wire.SteinerSpec{Vertices: 12, Edges: wEdges, Requests: wReqs},
		},
		events: leasing.ConnectEvents(reqs),
		fresh:  func() (stream.Leaser, error) { return leasing.NewSteinerStream(stInst) },
	})

	ruRng := rand.New(rand.NewSource(14))
	var ruReqs []leasing.ReusableRequest
	for tm := int64(0); tm < 100; tm++ {
		if ruRng.Float64() < 0.5 {
			ruReqs = append(ruReqs, leasing.ReusableRequest{T: tm, Dur: int64(ruRng.Intn(9))})
		}
	}
	ruInst, err := leasing.NewReusableInstance(cfg, 3, ruReqs)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, remoteCase{
		name: "reusable",
		spec: wire.OpenRequest{
			Domain: wire.DomainReusable, Types: types,
			Reusable: &wire.ReusableSpec{Capacity: 3},
		},
		events: leasing.UseEvents(ruReqs),
		fresh:  func() (stream.Leaser, error) { return leasing.NewReusableStream(ruInst) },
	})

	return cases
}

// TestRemoteCasesCoverAllWireDomains is the suite's completeness gate:
// every domain registered in wire.Domains must appear as a remote case
// (so the parity, binary-parity and recovery harnesses all exercise
// it), and no case may name a domain the wire layer does not register.
// Registering a ninth domain without extending remoteCases fails here,
// not silently.
func TestRemoteCasesCoverAllWireDomains(t *testing.T) {
	covered := make(map[string]bool)
	for _, tc := range remoteCases(t) {
		covered[tc.spec.Domain] = true
	}
	for _, d := range wire.Domains() {
		if !covered[d] {
			t.Errorf("wire domain %q has no remote case; parity, binary-parity and recovery suites are not exercising it", d)
		}
		delete(covered, d)
	}
	for d := range covered {
		t.Errorf("remote case domain %q is not registered in wire.Domains", d)
	}
}

// TestRemoteParityWithReplay drives all eight domain leasers through
// the HTTP service via the real client and holds each remote Result to
// byte-identity with single-threaded Replays of (a) a leaser rebuilt
// from the session's own wire spec and (b) a facade-built leaser.
func TestRemoteParityWithReplay(t *testing.T) {
	cases := remoteCases(t)
	eng := engine.New(engine.Config{Shards: 4, BatchSize: 8, QueueDepth: 16, RecordRuns: true})
	ts := httptest.NewServer(server.New(eng, server.Config{ChunkSize: 16}))
	defer func() {
		ts.Close()
		eng.Close()
	}()
	cli := client.New(ts.URL, client.Options{Chunk: 5})
	ctx := context.Background()

	for _, tc := range cases {
		if err := cli.Open(ctx, tc.name, tc.spec); err != nil {
			t.Fatalf("%s: open: %v", tc.name, err)
		}
	}
	for i, tc := range cases {
		wevs, err := wire.FromStreamEvents(tc.events)
		if err != nil {
			t.Fatalf("%s: wire events: %v", tc.name, err)
		}
		// Alternate array submits and NDJSON streaming so both
		// ingestion paths feed the parity check.
		if i%2 == 0 {
			if _, err := cli.Submit(ctx, tc.name, wevs); err != nil {
				t.Fatalf("%s: submit: %v", tc.name, err)
			}
		} else {
			if _, err := cli.SubmitNDJSON(ctx, tc.name, wevs); err != nil {
				t.Fatalf("%s: submit ndjson: %v", tc.name, err)
			}
		}
	}
	if err := cli.Flush(ctx, cases[0].name); err != nil {
		t.Fatal(err)
	}

	for _, tc := range cases {
		wrun, err := cli.Result(ctx, tc.name)
		if err != nil {
			t.Fatalf("%s: result: %v", tc.name, err)
		}
		got := fmt.Sprintf("%#v", wrun.Stream())

		specRef, err := tc.spec.Build()
		if err != nil {
			t.Fatalf("%s: spec build: %v", tc.name, err)
		}
		specWant, err := stream.Replay(specRef, tc.events)
		if err != nil {
			t.Fatalf("%s: spec replay: %v", tc.name, err)
		}
		if want := fmt.Sprintf("%#v", specWant); got != want {
			t.Errorf("%s: remote run not byte-identical to spec-built Replay:\nremote %s\nreplay %s",
				tc.name, got, want)
		}

		facadeRef, err := tc.fresh()
		if err != nil {
			t.Fatalf("%s: fresh: %v", tc.name, err)
		}
		facadeWant, err := stream.Replay(facadeRef, tc.events)
		if err != nil {
			t.Fatalf("%s: facade replay: %v", tc.name, err)
		}
		if want := fmt.Sprintf("%#v", facadeWant); got != want {
			t.Errorf("%s: remote run not byte-identical to facade-built Replay:\nremote %s\nreplay %s",
				tc.name, got, want)
		}

		cost, err := cli.Cost(ctx, tc.name)
		if err != nil {
			t.Fatal(err)
		}
		if cost.Stream() != specWant.Final {
			t.Errorf("%s: remote cost %+v != replay final %+v", tc.name, cost, specWant.Final)
		}
		snap, err := cli.Snapshot(ctx, tc.name)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := fmt.Sprintf("%#v", snap.Stream()), fmt.Sprintf("%#v", facadeRef.Snapshot()); got != want {
			t.Errorf("%s: remote snapshot differs from replay snapshot:\nremote %s\nreplay %s", tc.name, got, want)
		}
		n, err := cli.Processed(ctx, tc.name)
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(len(tc.events)) {
			t.Errorf("%s: remote processed %d events, want %d", tc.name, n, len(tc.events))
		}
	}
}
