package server_test

// Recovery parity anchor: for every domain leaser, a session logged by
// a durable engine and rebuilt from the write-ahead log must end
// byte-identical to a single-threaded stream.Replay of its full logged
// history — across shard counts, batch sizes and fsync settings, with
// the recovering engine sized differently from the logging one, and
// with torn or corrupted tail records truncated rather than replayed.

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"leasing/internal/engine"
	"leasing/internal/stream"
	"leasing/internal/wal"
	"leasing/internal/wire"
)

// specBytes renders the canonical logged spec, as the server does on
// open.
func specBytes(t *testing.T, spec wire.OpenRequest) []byte {
	t.Helper()
	b, err := json.Marshal(&spec)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// recoverEngine rebuilds an engine from the log the way cmd/leased
// does on boot: unmarshal each logged spec, Build the algorithm, and
// Restore the histories.
func recoverEngine(t *testing.T, wlog *wal.Log, cfg engine.Config) *engine.Engine {
	t.Helper()
	cfg.WAL = wlog
	eng := engine.New(cfg)
	sessions := wlog.Recover()
	restored := make([]engine.Restored, len(sessions))
	for i, s := range sessions {
		var spec wire.OpenRequest
		if err := json.Unmarshal(s.Spec, &spec); err != nil {
			t.Fatalf("recover %s: decode spec: %v", s.Tenant, err)
		}
		lsr, err := spec.Build()
		if err != nil {
			t.Fatalf("recover %s: build: %v", s.Tenant, err)
		}
		restored[i] = engine.Restored{Tenant: s.Tenant, Leaser: lsr, Events: s.Events, Closed: s.Closed}
	}
	if err := eng.Restore(restored); err != nil {
		t.Fatalf("restore: %v", err)
	}
	return eng
}

// runDurable logs all cases through a durable engine, chunked so event
// batches interleave across tenants, and closes everything cleanly.
// splitAt < len(events) leaves the tail of every tenant unsubmitted
// (for resume tests); here it is always full length.
func runDurable(t *testing.T, dir string, cases []remoteCase, cfg engine.Config, opts wal.Options) {
	t.Helper()
	wlog, err := wal.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg.WAL = wlog
	eng := engine.New(cfg)
	for _, tc := range cases {
		lsr, err := tc.spec.Build()
		if err != nil {
			t.Fatalf("%s: build: %v", tc.name, err)
		}
		if err := eng.OpenSpec(tc.name, lsr, specBytes(t, tc.spec)); err != nil {
			t.Fatalf("%s: open: %v", tc.name, err)
		}
	}
	// Round-robin chunked submission so the log interleaves tenants.
	const chunk = 7
	offset := make([]int, len(cases))
	for live := len(cases); live > 0; {
		live = 0
		for i, tc := range cases {
			lo := offset[i]
			if lo >= len(tc.events) {
				continue
			}
			hi := min(lo+chunk, len(tc.events))
			if err := eng.SubmitBatch(tc.name, tc.events[lo:hi:hi]); err != nil {
				t.Fatalf("%s: submit: %v", tc.name, err)
			}
			offset[i] = hi
			if hi < len(tc.events) {
				live++
			}
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := wlog.Close(); err != nil {
		t.Fatal(err)
	}
}

// verifyRecovered holds one recovered tenant to byte-identity with a
// Replay of events through a spec-built leaser.
func verifyRecovered(t *testing.T, eng *engine.Engine, tc remoteCase, events []stream.Event, label string) {
	t.Helper()
	ref, err := tc.spec.Build()
	if err != nil {
		t.Fatalf("%s: build: %v", tc.name, err)
	}
	want, err := stream.Replay(ref, events)
	if err != nil {
		t.Fatalf("%s: replay: %v", tc.name, err)
	}
	got, err := eng.Result(tc.name)
	if err != nil {
		t.Fatalf("%s [%s]: result: %v", tc.name, label, err)
	}
	if g, w := fmt.Sprintf("%#v", got), fmt.Sprintf("%#v", want); g != w {
		t.Errorf("%s [%s]: recovered run not byte-identical to Replay of logged history:\nrecovered %s\nreplay    %s",
			tc.name, label, g, w)
	}
	cost, err := eng.Cost(tc.name)
	if err != nil {
		t.Fatalf("%s [%s]: cost: %v", tc.name, label, err)
	}
	if cost != want.Final {
		t.Errorf("%s [%s]: recovered cost %+v != replay final %+v", tc.name, label, cost, want.Final)
	}
	sol, err := eng.Snapshot(tc.name)
	if err != nil {
		t.Fatalf("%s [%s]: snapshot: %v", tc.name, label, err)
	}
	if g, w := fmt.Sprintf("%#v", sol), fmt.Sprintf("%#v", ref.Snapshot()); g != w {
		t.Errorf("%s [%s]: recovered snapshot differs from replay snapshot", tc.name, label)
	}
	n, err := eng.Events(tc.name)
	if err != nil || n != int64(len(events)) {
		t.Errorf("%s [%s]: recovered %d events (%v), want %d", tc.name, label, n, err, len(events))
	}
}

// TestRecoveryParityAllDomains sweeps shard/batch/fsync configurations:
// all eight domain leasers are logged under one engine shape, recovered
// under a different one, and every tenant must match a Replay of its
// full logged history. Segment rotation is forced small so recovery
// also crosses segment boundaries.
func TestRecoveryParityAllDomains(t *testing.T) {
	cases := remoteCases(t)
	configs := []struct {
		logShards, logBatch int
		recShards, recBatch int
		fsync               bool
		segBytes            int64
	}{
		{1, 1, 4, 64, false, 1 << 20},
		{4, 8, 16, 1, true, 4096},
		{16, 64, 1, 8, false, 512},
		{4, 1, 4, 8, true, 1 << 20},
		{16, 8, 8, 64, false, 4096},
	}
	for _, cc := range configs {
		name := fmt.Sprintf("log_s%db%d/rec_s%db%d/fsync=%v", cc.logShards, cc.logBatch, cc.recShards, cc.recBatch, cc.fsync)
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			runDurable(t, dir, cases,
				engine.Config{Shards: cc.logShards, BatchSize: cc.logBatch, RecordRuns: true},
				wal.Options{Fsync: cc.fsync, SegmentBytes: cc.segBytes})

			wlog, err := wal.Open(dir, wal.Options{Fsync: cc.fsync, SegmentBytes: cc.segBytes})
			if err != nil {
				t.Fatal(err)
			}
			defer wlog.Close()
			eng := recoverEngine(t, wlog, engine.Config{Shards: cc.recShards, BatchSize: cc.recBatch, RecordRuns: true})
			defer eng.Close()
			for _, tc := range cases {
				verifyRecovered(t, eng, tc, tc.events, "recovered")
			}
		})
	}
}

// TestRecoveryResumesAndCloses: a recovered session keeps accepting
// events exactly where its logged history ends, a session closed before
// the crash recovers sealed, and a second recovery (a crash after the
// first recovery plus new traffic) still matches Replay.
func TestRecoveryResumesAndCloses(t *testing.T) {
	cases := remoteCases(t)
	dir := t.TempDir()

	// First life: submit only a prefix of each stream; close one tenant.
	wlog, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{Shards: 4, BatchSize: 8, RecordRuns: true, WAL: wlog})
	split := make(map[string]int, len(cases))
	for _, tc := range cases {
		lsr, err := tc.spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.OpenSpec(tc.name, lsr, specBytes(t, tc.spec)); err != nil {
			t.Fatal(err)
		}
		split[tc.name] = len(tc.events) / 2
		if err := eng.SubmitBatch(tc.name, tc.events[:split[tc.name]]); err != nil {
			t.Fatal(err)
		}
	}
	sealed := cases[0].name
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := eng.CloseTenant(sealed); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := wlog.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: recover, resume the open tenants, re-verify all.
	wlog2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng2 := recoverEngine(t, wlog2, engine.Config{Shards: 2, BatchSize: 16, RecordRuns: true})
	for _, tc := range cases {
		if tc.name == sealed {
			// Sealed before the crash: recovered sealed, reads serve the
			// prefix state, new events are rejected by the seal.
			if err := eng2.CloseTenant(tc.name); err == nil {
				t.Errorf("%s: recovered session not sealed", tc.name)
			}
			verifyRecovered(t, eng2, tc, tc.events[:split[tc.name]], "sealed")
			continue
		}
		if err := eng2.SubmitBatch(tc.name, tc.events[split[tc.name]:]); err != nil {
			t.Fatalf("%s: resume: %v", tc.name, err)
		}
	}
	if err := eng2.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		if tc.name == sealed {
			continue
		}
		verifyRecovered(t, eng2, tc, tc.events, "resumed")
	}
	if err := eng2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := wlog2.Close(); err != nil {
		t.Fatal(err)
	}

	// Third life: nothing new happened after the resume; recovery of the
	// resumed log still matches the full streams.
	wlog3, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer wlog3.Close()
	eng3 := recoverEngine(t, wlog3, engine.Config{Shards: 8, BatchSize: 4, RecordRuns: true})
	defer eng3.Close()
	for _, tc := range cases {
		if tc.name == sealed {
			verifyRecovered(t, eng3, tc, tc.events[:split[tc.name]], "sealed-again")
			continue
		}
		verifyRecovered(t, eng3, tc, tc.events, "recovered-again")
	}
}

// TestRecoveryTruncatesTornTail: a torn (half-written) or corrupted
// (bit-flipped) final record must be truncated, and the recovered
// session must equal a Replay of the surviving whole-record prefix —
// never a replay of damaged bytes.
func TestRecoveryTruncatesTornTail(t *testing.T) {
	tc := remoteCases(t)[0] // parking: one event per record below
	for _, tear := range []struct {
		name   string
		mutate func(t *testing.T, path string, size int64)
	}{
		{"truncated mid-record", func(t *testing.T, path string, size int64) {
			if err := os.Truncate(path, size-2); err != nil {
				t.Fatal(err)
			}
		}},
		{"bit flip in last record", func(t *testing.T, path string, size int64) {
			f, err := os.OpenFile(path, os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.WriteAt([]byte{0xA5}, size-3); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tear.name, func(t *testing.T) {
			dir := t.TempDir()
			wlog, err := wal.Open(dir, wal.Options{})
			if err != nil {
				t.Fatal(err)
			}
			eng := engine.New(engine.Config{Shards: 1, RecordRuns: true, WAL: wlog})
			lsr, err := tc.spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.OpenSpec(tc.name, lsr, specBytes(t, tc.spec)); err != nil {
				t.Fatal(err)
			}
			// One event per record, so the torn record boundary is an
			// event boundary and the survivor set is a strict prefix.
			for _, ev := range tc.events {
				if err := eng.SubmitBatch(tc.name, []stream.Event{ev}); err != nil {
					t.Fatal(err)
				}
			}
			if err := eng.Close(); err != nil {
				t.Fatal(err)
			}
			if err := wlog.Close(); err != nil {
				t.Fatal(err)
			}

			// Damage the tail of the last (only) segment.
			path := dir + "/00000001.wal"
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			tear.mutate(t, path, fi.Size())

			wlog2, err := wal.Open(dir, wal.Options{})
			if err != nil {
				t.Fatalf("open after tear: %v", err)
			}
			defer wlog2.Close()
			sessions := wlog2.Recover()
			if len(sessions) != 1 {
				t.Fatalf("recovered %d sessions", len(sessions))
			}
			n := len(sessions[0].Events)
			if n != len(tc.events)-1 {
				t.Fatalf("recovered %d events, want the %d-event prefix", n, len(tc.events)-1)
			}
			eng2 := recoverEngine(t, wlog2, engine.Config{Shards: 2, RecordRuns: true})
			defer eng2.Close()
			verifyRecovered(t, eng2, tc, tc.events[:n], "torn-tail")
		})
	}
}

// TestRecoveryAfterCompaction: compaction must preserve parity for live
// sessions and reclaim closed ones.
func TestRecoveryAfterCompaction(t *testing.T) {
	cases := remoteCases(t)
	dir := t.TempDir()
	wlog, err := wal.Open(dir, wal.Options{SegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Config{Shards: 4, RecordRuns: true, WAL: wlog})
	for _, tc := range cases {
		lsr, err := tc.spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.OpenSpec(tc.name, lsr, specBytes(t, tc.spec)); err != nil {
			t.Fatal(err)
		}
		if err := eng.SubmitBatch(tc.name, tc.events); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	sealed := cases[1].name
	if err := eng.CloseTenant(sealed); err != nil {
		t.Fatal(err)
	}
	if err := wlog.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := wlog.Close(); err != nil {
		t.Fatal(err)
	}

	wlog2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer wlog2.Close()
	for _, s := range wlog2.Recover() {
		if s.Tenant == sealed {
			t.Fatalf("compaction kept the closed tenant %s", sealed)
		}
	}
	eng2 := recoverEngine(t, wlog2, engine.Config{Shards: 1, RecordRuns: true})
	defer eng2.Close()
	for _, tc := range cases {
		if tc.name == sealed {
			continue
		}
		verifyRecovered(t, eng2, tc, tc.events, "post-compaction")
	}
}
