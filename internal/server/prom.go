package server

// Prometheus exposition of the service's counters. The metrics endpoint
// keeps serving its JSON sample by default; a scraper that asks for
// text/plain (or ?format=prometheus) gets the same counters in the
// Prometheus text format instead: the engine families mapped by
// internal/wire, the write-ahead log's counters when the daemon runs
// durable, and the server's own per-endpoint request/error counters.
// The exposition is gated by a golden-file test plus a promtext parse
// round trip, so a renamed metric cannot ship silently.

import (
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"

	"leasing/internal/cluster"
	"leasing/internal/engine"
	"leasing/internal/promtext"
	"leasing/internal/wal"
	"leasing/internal/wire"
)

// endpointCounter tracks one declared endpoint's traffic: requests
// routed to it and non-2xx responses it produced.
type endpointCounter struct {
	name     string
	requests atomic.Int64
	errors   atomic.Int64
}

// statusRecorder captures the response status for the error counter.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrumented wraps an endpoint's handler with its counters.
func (s *Server) instrumented(c *endpointCounter, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		c.requests.Add(1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		if rec.status >= 400 {
			c.errors.Add(1)
		}
	}
}

// endpointSample is one endpoint's counter snapshot, the input of the
// pure exposition builder (and of its golden test).
type endpointSample struct {
	name             string
	requests, failed int64
}

func (s *Server) endpointSamples() []endpointSample {
	out := make([]endpointSample, len(s.reqs))
	for i, c := range s.reqs {
		out[i] = endpointSample{name: c.name, requests: c.requests.Load(), failed: c.errors.Load()}
	}
	return out
}

// prometheusFamilies assembles the full exposition: engine families
// from the wire mapping, WAL families when a stats hook is configured,
// shipper families when the node replicates, and the HTTP per-endpoint
// counters. Pure in its inputs so the golden test can pin the output
// byte for byte.
func prometheusFamilies(m engine.Metrics, ws *wal.Stats, ss *cluster.ShipperStats, eps []endpointSample) []promtext.Family {
	fams := wire.FromEngineMetrics(m).PrometheusFamilies()
	if ws != nil {
		fams = append(fams,
			promtext.Family{
				Name: "leased_wal_appends_total", Type: promtext.TypeCounter,
				Help:    "Write-ahead-log records acknowledged since start.",
				Samples: []promtext.Sample{{Value: float64(ws.Appends)}},
			},
			promtext.Family{
				Name: "leased_wal_syncs_total", Type: promtext.TypeCounter,
				Help:    "Fsyncs issued; smaller than appends under group commit.",
				Samples: []promtext.Sample{{Value: float64(ws.Syncs)}},
			},
			promtext.Family{
				Name: "leased_wal_compactions_total", Type: promtext.TypeCounter,
				Help:    "Completed write-ahead-log compactions.",
				Samples: []promtext.Sample{{Value: float64(ws.Compactions)}},
			},
			promtext.Family{
				Name: "leased_wal_compaction_failures_total", Type: promtext.TypeCounter,
				Help:    "Automatic compactions that failed (the log keeps appending).",
				Samples: []promtext.Sample{{Value: float64(ws.CompactionFailures)}},
			},
			promtext.Family{
				Name: "leased_wal_segment", Type: promtext.TypeGauge,
				Help:    "Active write-ahead-log segment index.",
				Samples: []promtext.Sample{{Value: float64(ws.Segment)}},
			},
			promtext.Family{
				Name: "leased_wal_segment_bytes", Type: promtext.TypeGauge,
				Help:    "Active write-ahead-log segment size in bytes.",
				Samples: []promtext.Sample{{Value: float64(ws.SegmentBytes)}},
			},
		)
	}
	if ss != nil {
		fams = append(fams,
			promtext.Family{
				Name: "leased_shipper_shipped_total", Type: promtext.TypeCounter,
				Help:    "WAL records acknowledged by replica peers.",
				Samples: []promtext.Sample{{Value: float64(ss.Shipped)}},
			},
			promtext.Family{
				Name: "leased_shipper_batches_total", Type: promtext.TypeCounter,
				Help:    "Replicate requests that succeeded.",
				Samples: []promtext.Sample{{Value: float64(ss.Batches)}},
			},
			promtext.Family{
				Name: "leased_shipper_dropped_total", Type: promtext.TypeCounter,
				Help:    "Records discarded because their peer had failed.",
				Samples: []promtext.Sample{{Value: float64(ss.Dropped)}},
			},
			promtext.Family{
				Name: "leased_shipper_failed_peers", Type: promtext.TypeGauge,
				Help:    "Peers replication has given up on; non-zero pages.",
				Samples: []promtext.Sample{{Value: float64(len(ss.FailedPeers))}},
			},
		)
	}
	reqSamples := make([]promtext.Sample, len(eps))
	errSamples := make([]promtext.Sample, len(eps))
	for i, ep := range eps {
		labels := []promtext.Label{{Name: "endpoint", Value: ep.name}}
		reqSamples[i] = promtext.Sample{Labels: labels, Value: float64(ep.requests)}
		errSamples[i] = promtext.Sample{Labels: labels, Value: float64(ep.failed)}
	}
	return append(fams,
		promtext.Family{
			Name: "leased_http_requests_total", Type: promtext.TypeCounter,
			Help:    "HTTP requests routed per declared endpoint.",
			Samples: reqSamples,
		},
		promtext.Family{
			Name: "leased_http_errors_total", Type: promtext.TypeCounter,
			Help:    "Non-2xx HTTP responses per declared endpoint.",
			Samples: errSamples,
		},
	)
}

// wantsPrometheus reports whether the request asked for the text
// exposition: an explicit ?format=prometheus, or an Accept header
// preferring text/plain (the accept header Prometheus scrapers send).
func wantsPrometheus(r *http.Request) bool {
	if r.URL.Query().Get("format") == "prometheus" {
		return true
	}
	accept := r.Header.Get("Accept")
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(part)
		if i := strings.IndexByte(mt, ';'); i >= 0 {
			mt = strings.TrimSpace(mt[:i])
		}
		switch mt {
		case "text/plain", "application/openmetrics-text":
			return true
		case "application/json":
			return false
		}
	}
	return false
}

// serveMetricsText writes the Prometheus exposition.
func (s *Server) serveMetricsText(w http.ResponseWriter) {
	var ws *wal.Stats
	if s.cfg.WALStats != nil {
		st := s.cfg.WALStats()
		ws = &st
	}
	var ss *cluster.ShipperStats
	if s.cluster != nil && s.cluster.cfg.ShipperStats != nil {
		st := s.cluster.cfg.ShipperStats()
		ss = &st
	}
	text, err := promtext.Encode(prometheusFamilies(s.eng.Metrics(), ws, ss, s.endpointSamples()))
	if err != nil {
		// Unreachable for the families built here; surfacing it beats a
		// silent half-scrape if a future family regresses.
		writeError(w, wire.CodeSessionFailed, fmt.Sprintf("encode metrics: %v", err), 0)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(text)
}
