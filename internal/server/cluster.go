package server

// The cluster face of the server: tenant placement redirects and the
// log-shipping replication endpoints. With Config.Cluster set, tenant
// requests that belong to another node are answered with a 307 to the
// owner (clients that route by the same ring never see one; clients
// with a stale member list follow it transparently), the replicate
// endpoint appends shipped WAL records to this node's follower log, and
// the activate endpoint recovers follower sessions into the serving
// engine — the failover path the kill-one-node drill exercises.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"leasing/internal/cluster"
	"leasing/internal/engine"
	"leasing/internal/wal"
	"leasing/internal/wire"
)

// ClusterConfig enables cluster mode: placement-aware redirects plus
// the replication ingest and failover activation endpoints.
type ClusterConfig struct {
	// Self is this node's base URL as it appears in Peers.
	Self string
	// Peers is the full member list (including Self), one base URL per
	// node. Every node and cluster client builds the same ring from it.
	Peers []string
	// Follower is the log shipped records are appended to and failover
	// activation recovers from. Required.
	Follower *wal.Log
	// WAL, when non-nil, is this node's own write-ahead log (as wired
	// into its engine): activation copies an adopted tenant's shipped
	// history into it before the session starts serving, so the tenant
	// survives a later crash of this node — and, when the WAL is itself
	// replicated, ships onward to the tenant's next replica.
	WAL engine.WAL
	// ShipperStats, when non-nil, samples this node's outbound shipper
	// for the metrics endpoint (the leased_shipper_* families).
	ShipperStats func() cluster.ShipperStats
}

// clusterState is the server's compiled cluster mode.
type clusterState struct {
	cfg  ClusterConfig
	ring *cluster.Ring

	// activateMu serializes failover activations; idempotence comes from
	// re-checking engine.Has under it.
	activateMu sync.Mutex
}

// newClusterState validates and compiles a ClusterConfig.
func newClusterState(cfg *ClusterConfig) (*clusterState, error) {
	if cfg == nil {
		return nil, nil
	}
	if cfg.Follower == nil {
		return nil, fmt.Errorf("server: cluster mode requires a follower log")
	}
	ring, err := cluster.New(cfg.Peers, 0)
	if err != nil {
		return nil, err
	}
	if !ring.Has(cfg.Self) {
		return nil, fmt.Errorf("server: self %q is not in the peer list", cfg.Self)
	}
	return &clusterState{cfg: *cfg, ring: ring}, nil
}

// redirected wraps a tenant-scoped handler: a tenant placed on another
// node — and not already active locally, as it is after a failover
// activation — is answered with a 307 to the same path on its owner.
func (s *Server) redirected(h http.HandlerFunc) http.HandlerFunc {
	if s.cluster == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		tenant := r.PathValue("tenant")
		owner := s.cluster.ring.Owner(tenant)
		if owner == s.cluster.cfg.Self || s.eng.Has(tenant) {
			h(w, r)
			return
		}
		// 307 keeps the method and body; Go clients re-send both
		// automatically for buffered bodies.
		http.Redirect(w, r, redirectTarget(owner, r.URL.Path, r.URL.RawQuery),
			http.StatusTemporaryRedirect)
	}
}

// handleReplicate applies shipped WAL records to the follower log. The
// body is the binary framing: magic, then one frame per record whose
// payload is a record-kind byte followed by the record's encoded
// payload — the exact bytes the primary appended locally.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeError(w, wire.CodeNotClustered, "replication requires -peers", 0)
		return
	}
	applied := 0
	br, _ := s.readers.Get().(*bufio.Reader)
	if br == nil {
		br = bufio.NewReaderSize(r.Body, 64*1024)
	} else {
		br.Reset(r.Body)
	}
	defer s.readers.Put(br)

	var magic [len(wire.BinaryMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		writeError(w, wire.CodeBadRequest, "read binary magic: "+err.Error(), 0)
		return
	}
	if string(magic[:]) != wire.BinaryMagic {
		writeError(w, wire.CodeBadRequest, fmt.Sprintf("bad binary magic %q", magic[:]), 0)
		return
	}

	framep, _ := s.frames.Get().(*[]byte)
	if framep == nil {
		framep = new([]byte)
	}
	defer s.frames.Put(framep)

	for {
		n, err := binary.ReadUvarint(br)
		if err == io.EOF {
			break // clean end of body between frames
		}
		if err != nil {
			writeError(w, wire.CodeBadRequest, "read frame length: "+err.Error(), applied)
			return
		}
		if n == 0 || n > wire.MaxFrameBytes {
			writeError(w, wire.CodeBadRequest, fmt.Sprintf("frame of %d bytes out of range", n), applied)
			return
		}
		if uint64(cap(*framep)) < n {
			*framep = make([]byte, n)
		}
		frame := (*framep)[:n]
		if _, err := io.ReadFull(br, frame); err != nil {
			writeError(w, wire.CodeBadRequest, "read frame: "+err.Error(), applied)
			return
		}
		if len(frame) < 2 {
			writeError(w, wire.CodeBadRequest, "frame too short for a record", applied)
			return
		}
		if err := s.cluster.cfg.Follower.AppendRecord(frame[0], frame[1:]); err != nil {
			code := wire.CodeStorageFailed
			if errors.Is(err, wal.ErrBadRecord) {
				code = wire.CodeBadRequest
			}
			writeError(w, code, err.Error(), applied)
			return
		}
		applied++
	}
	writeJSON(w, http.StatusOK, wire.ReplicateResponse{Applied: applied})
}

// handleActivate recovers follower sessions into the serving engine:
// sessions whose ring owner is in the request's down list (all of them
// when the list is empty) and which are not already active locally are
// rebuilt from their shipped spec and history — the crash-recovery
// replay — after copying that history into this node's own WAL. The
// down scoping matters because a follower log also holds tenants whose
// primary is healthy: adopting those would fork them.
func (s *Server) handleActivate(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeError(w, wire.CodeNotClustered, "activation requires -peers", 0)
		return
	}
	var req wire.ActivateRequest
	if r.ContentLength != 0 {
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, wire.CodeBadRequest, "decode activate request: "+err.Error(), 0)
			return
		}
	}
	down := make(map[string]bool, len(req.Down))
	for _, node := range req.Down {
		down[node] = true
	}
	s.cluster.activateMu.Lock()
	defer s.cluster.activateMu.Unlock()

	sessions, err := s.cluster.cfg.Follower.Rescan()
	if err != nil {
		writeError(w, wire.CodeStorageFailed, "rescan follower log: "+err.Error(), 0)
		return
	}
	activated := 0
	for _, sess := range sessions {
		if len(down) > 0 && !s.cluster.claims(sess.Tenant, down) {
			continue
		}
		if s.eng.Has(sess.Tenant) {
			continue
		}
		restored, err := s.adopt(sess)
		if err != nil {
			writeError(w, wire.CodeBadRequest,
				fmt.Sprintf("activate %q: %v", sess.Tenant, err), activated)
			return
		}
		if err := s.eng.Restore([]engine.Restored{restored}); err != nil {
			writeEngineError(w, err, activated)
			return
		}
		activated++
	}
	writeJSON(w, http.StatusOK, wire.ActivateResponse{Activated: activated})
}

// claims decides whether this node adopts a tenant during a failover
// scoped by a down list: the tenant's ring owner must be down, and this
// node must be the tenant's first live successor — the node a
// ring-aware client routes the tenant to once the owner is marked
// down. Exactly one survivor claims each tenant, even though adoption
// re-ships the history onward and lands copies in further followers.
func (c *clusterState) claims(tenant string, down map[string]bool) bool {
	succ := c.ring.Successors(tenant, len(c.ring.Members()))
	for _, member := range succ {
		if down[member] {
			continue
		}
		return member == c.cfg.Self
	}
	return false
}

// adoptChunk bounds events per WAL record when an adopted history is
// copied into the local log, mirroring compaction's record sizing.
const adoptChunk = 2048

// adopt turns one follower session into a Restored engine session,
// first copying its history into this node's own WAL (when durable) so
// the adoption survives a local crash.
func (s *Server) adopt(sess wal.Session) (engine.Restored, error) {
	var req wire.OpenRequest
	if err := json.Unmarshal(sess.Spec, &req); err != nil {
		return engine.Restored{}, fmt.Errorf("decode open spec: %w", err)
	}
	lsr, err := s.cfg.Builder(&req)
	if err != nil {
		return engine.Restored{}, fmt.Errorf("build session: %w", err)
	}
	if w := s.cluster.cfg.WAL; w != nil {
		if err := w.LogOpen(sess.Tenant, sess.Spec); err != nil {
			return engine.Restored{}, err
		}
		for lo := 0; lo < len(sess.Events); lo += adoptChunk {
			hi := min(lo+adoptChunk, len(sess.Events))
			if err := w.LogEvents(sess.Tenant, sess.Events[lo:hi]); err != nil {
				return engine.Restored{}, err
			}
		}
		if sess.Closed {
			if err := w.LogClose(sess.Tenant); err != nil {
				return engine.Restored{}, err
			}
		}
	}
	return engine.Restored{
		Tenant: sess.Tenant, Leaser: lsr, Events: sess.Events, Closed: sess.Closed,
	}, nil
}

// OwnerURL reports where the cluster places a tenant — "" when the
// server is not clustered. Exposed for operational introspection and
// tests.
func (s *Server) OwnerURL(tenant string) string {
	if s.cluster == nil {
		return ""
	}
	return s.cluster.ring.Owner(tenant)
}

// redirectTarget builds the URL a tenant request is redirected to.
func redirectTarget(owner, path, query string) string {
	target := strings.TrimRight(owner, "/") + path
	if query != "" {
		target += "?" + query
	}
	return target
}
