package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// Property tests for the placement ring, seeded and deterministic: the
// tenant population is drawn from a fixed-seed PRNG, so every asserted
// bound is a pinned fact about the shipped hash, not a flaky sample.

const (
	testSeed    = 41
	testTenants = 2048
)

// seededTenants draws a deterministic tenant population.
func seededTenants(tb testing.TB, n int) []string {
	tb.Helper()
	rng := rand.New(rand.NewSource(testSeed))
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for len(out) < n {
		t := fmt.Sprintf("tenant-%08x", rng.Uint32())
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}

func testMembers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

func mustRing(tb testing.TB, members []string) *Ring {
	tb.Helper()
	r, err := New(members, 0)
	if err != nil {
		tb.Fatalf("New(%v): %v", members, err)
	}
	return r
}

func TestNewRejectsBadMembers(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Fatal("New(nil) accepted an empty member set")
	}
	if _, err := New([]string{"a", ""}, 0); err == nil {
		t.Fatal("New accepted an empty member name")
	}
	if _, err := New([]string{"a", "b", "a"}, 0); err == nil {
		t.Fatal("New accepted a duplicate member")
	}
}

// TestOwnerOrderIndependent: ownership is a pure function of the member
// set — the order members are listed in must not matter.
func TestOwnerOrderIndependent(t *testing.T) {
	tenants := seededTenants(t, 256)
	members := testMembers(5)
	r1 := mustRing(t, members)
	shuffled := []string{members[3], members[0], members[4], members[2], members[1]}
	r2 := mustRing(t, shuffled)
	for _, tn := range tenants {
		if r1.Owner(tn) != r2.Owner(tn) {
			t.Fatalf("tenant %s: owner depends on member order: %s vs %s", tn, r1.Owner(tn), r2.Owner(tn))
		}
		if r1.Replica(tn) != r2.Replica(tn) {
			t.Fatalf("tenant %s: replica depends on member order", tn)
		}
	}
}

// TestSuccessorsDistinct: Successors returns distinct members, owner
// first, replica second; a single-member ring has no replica.
func TestSuccessorsDistinct(t *testing.T) {
	r := mustRing(t, testMembers(4))
	for _, tn := range seededTenants(t, 128) {
		s := r.Successors(tn, 4)
		if len(s) != 4 {
			t.Fatalf("tenant %s: got %d successors, want 4", tn, len(s))
		}
		seen := map[string]bool{}
		for _, m := range s {
			if seen[m] {
				t.Fatalf("tenant %s: duplicate successor %s", tn, m)
			}
			seen[m] = true
		}
		if s[0] != r.Owner(tn) {
			t.Fatalf("tenant %s: successors[0] = %s, owner = %s", tn, s[0], r.Owner(tn))
		}
		if s[1] != r.Replica(tn) {
			t.Fatalf("tenant %s: successors[1] = %s, replica = %s", tn, s[1], r.Replica(tn))
		}
	}
	single := mustRing(t, testMembers(1))
	if got := single.Replica("anyone"); got != "" {
		t.Fatalf("single-member ring reported replica %q", got)
	}
}

// TestOwnerMinimalMovementOnLeave pins the failover keystone: removing
// a member moves exactly that member's tenants and nothing else, and
// every moved tenant lands on what was its replica — the node its WAL
// records were being shipped to.
func TestOwnerMinimalMovementOnLeave(t *testing.T) {
	tenants := seededTenants(t, testTenants)
	for n := 2; n <= 16; n++ {
		members := testMembers(n)
		r := mustRing(t, members)
		for _, leave := range members {
			smaller, err := r.Without(leave)
			if err != nil {
				t.Fatalf("n=%d: Without(%s): %v", n, leave, err)
			}
			for _, tn := range tenants {
				before, after := r.Owner(tn), smaller.Owner(tn)
				switch {
				case before != leave && after != before:
					t.Fatalf("n=%d leave=%s: tenant %s moved %s -> %s without owning node leaving",
						n, leave, tn, before, after)
				case before == leave && after != r.Replica(tn):
					t.Fatalf("n=%d leave=%s: tenant %s failed over to %s, want its replica %s",
						n, leave, tn, after, r.Replica(tn))
				}
			}
		}
	}
}

// TestOwnerMinimalMovementOnJoin: adding a member only moves tenants
// the new member claims.
func TestOwnerMinimalMovementOnJoin(t *testing.T) {
	tenants := seededTenants(t, testTenants)
	for n := 1; n <= 15; n++ {
		r := mustRing(t, testMembers(n))
		joined := fmt.Sprintf("http://10.0.1.%d:8080", n+1)
		bigger, err := r.With(joined)
		if err != nil {
			t.Fatalf("n=%d: With: %v", n, err)
		}
		for _, tn := range tenants {
			before, after := r.Owner(tn), bigger.Owner(tn)
			if after != before && after != joined {
				t.Fatalf("n=%d: tenant %s moved %s -> %s, but only %s joined",
					n, tn, before, after, joined)
			}
		}
	}
}

// TestPlaceBalanceWithinBoundedLoad: across 1..16 nodes and a range of
// factors, no node is assigned more than the bounded-load cap
// ceil(factor·T/N), every tenant is placed, and the table is
// reproducible.
func TestPlaceBalanceWithinBoundedLoad(t *testing.T) {
	tenants := seededTenants(t, testTenants)
	for n := 1; n <= 16; n++ {
		r := mustRing(t, testMembers(n))
		for _, factor := range []float64{1.0, 1.1, DefaultLoadFactor} {
			place, err := r.Place(tenants, factor)
			if err != nil {
				t.Fatalf("n=%d factor=%.2f: Place: %v", n, factor, err)
			}
			if len(place) != len(tenants) {
				t.Fatalf("n=%d factor=%.2f: placed %d of %d tenants", n, factor, len(place), len(tenants))
			}
			limit := Cap(len(tenants), n, factor)
			load := map[string]int{}
			for tn, m := range place {
				if !r.Has(m) {
					t.Fatalf("n=%d: tenant %s placed on non-member %s", n, tn, m)
				}
				load[m]++
			}
			for m, c := range load {
				if c > limit {
					t.Fatalf("n=%d factor=%.2f: node %s carries %d tenants, cap %d", n, factor, m, c, limit)
				}
			}
			again, err := r.Place(tenants, factor)
			if err != nil {
				t.Fatalf("n=%d factor=%.2f: second Place: %v", n, factor, err)
			}
			for tn, m := range place {
				if again[tn] != m {
					t.Fatalf("n=%d factor=%.2f: Place not deterministic for tenant %s", n, factor, tn)
				}
			}
		}
	}
}

// TestPlaceMovementWithinCap: a membership change never moves more
// tenants than one node's bounded-load share. The bound is the cap of
// the smaller fleet, ceil(factor·T/N) — the ceil(T/N) fair share
// widened by the same load factor the balance property allows, since
// the departing (or claiming) node can legitimately carry up to the
// cap. The worst case over every possible leaver is asserted.
func TestPlaceMovementWithinCap(t *testing.T) {
	tenants := seededTenants(t, testTenants)
	const factor = DefaultLoadFactor
	for n := 2; n <= 16; n++ {
		members := testMembers(n)
		r := mustRing(t, members)
		place, err := r.Place(tenants, factor)
		if err != nil {
			t.Fatalf("n=%d: Place: %v", n, err)
		}

		leaveBound := Cap(len(tenants), n-1, factor)
		for _, leave := range members {
			smaller, err := r.Without(leave)
			if err != nil {
				t.Fatalf("n=%d: Without(%s): %v", n, leave, err)
			}
			after, err := smaller.Place(tenants, factor)
			if err != nil {
				t.Fatalf("n=%d leave=%s: Place: %v", n, leave, err)
			}
			moved := 0
			for tn, m := range place {
				if after[tn] != m {
					moved++
				}
			}
			if moved > leaveBound {
				t.Fatalf("n=%d leave=%s: %d tenants moved, bound ceil(%.2f·%d/%d)=%d",
					n, leave, moved, factor, len(tenants), n-1, leaveBound)
			}
		}

		joined := fmt.Sprintf("http://10.0.1.%d:8080", n+1)
		bigger, err := r.With(joined)
		if err != nil {
			t.Fatalf("n=%d: With: %v", n, err)
		}
		after, err := bigger.Place(tenants, factor)
		if err != nil {
			t.Fatalf("n=%d join: Place: %v", n, err)
		}
		moved := 0
		for tn, m := range place {
			if after[tn] != m {
				moved++
			}
		}
		if joinBound := Cap(len(tenants), n, factor); moved > joinBound {
			t.Fatalf("n=%d join: %d tenants moved, bound ceil(%.2f·%d/%d)=%d",
				n, moved, factor, len(tenants), n, joinBound)
		}
	}
}

func TestPlaceRejectsDuplicateTenants(t *testing.T) {
	r := mustRing(t, testMembers(3))
	if _, err := r.Place([]string{"a", "b", "a"}, 1.25); err == nil {
		t.Fatal("Place accepted a duplicate tenant")
	}
}

func TestCap(t *testing.T) {
	cases := []struct {
		tenants, members int
		factor           float64
		want             int
	}{
		{100, 4, 1.0, 25},
		{101, 4, 1.0, 26},
		{100, 4, 1.25, 32}, // ceil(125/4) = 32
		{1, 16, 1.0, 1},
		{0, 4, 1.0, 1},    // floor of 1 keeps Place total ≥ tenants
		{100, 4, 0.5, 25}, // factors below 1 clamp to 1
	}
	for _, c := range cases {
		if got := Cap(c.tenants, c.members, c.factor); got != c.want {
			t.Errorf("Cap(%d, %d, %.2f) = %d, want %d", c.tenants, c.members, c.factor, got, c.want)
		}
	}
}
