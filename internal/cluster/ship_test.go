package cluster

// Shipper and ReplicatedLog tests against an in-process follower: the
// ingest handler here mirrors the daemon's replicate endpoint (parse
// the binary framing, AppendRecord each record) so the tests can also
// exercise partial-apply resumption and ambiguous transport failures.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"leasing/internal/stream"
	"leasing/internal/wal"
	"leasing/internal/wire"
)

// follower is an httptest node accepting shipped records into a real
// follower log, with fault hooks for the failure-mode tests.
type follower struct {
	t   *testing.T
	dir string
	log *wal.Log
	srv *httptest.Server

	mu sync.Mutex
	// failAfter, when >= 0, makes the next request apply that many
	// records and then answer a structured storage_failed error.
	failAfter int
	// abort, when set, makes the next request drop the connection after
	// applying one record — an ambiguous failure.
	abort bool
}

func newFollower(t *testing.T) *follower {
	t.Helper()
	dir := t.TempDir()
	log, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := &follower{t: t, dir: dir, log: log, failAfter: -1}
	f.srv = httptest.NewServer(http.HandlerFunc(f.handle))
	t.Cleanup(func() {
		f.srv.Close()
		f.log.Close()
	})
	return f
}

func (f *follower) handle(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	failAfter, abort := f.failAfter, f.abort
	f.failAfter, f.abort = -1, false
	f.mu.Unlock()

	br := bufio.NewReader(r.Body)
	var magic [len(wire.BinaryMagic)]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || string(magic[:]) != wire.BinaryMagic {
		http.Error(w, "bad magic", http.StatusBadRequest)
		return
	}
	applied := 0
	for {
		if failAfter >= 0 && applied == failAfter {
			w.WriteHeader(http.StatusInsufficientStorage)
			json.NewEncoder(w).Encode(wire.Error{
				Code: wire.CodeStorageFailed, Message: "injected", Accepted: applied,
			})
			return
		}
		if abort && applied == 1 {
			panic(http.ErrAbortHandler) // connection dies mid-request
		}
		n, err := binary.ReadUvarint(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		frame := make([]byte, n)
		if _, err := io.ReadFull(br, frame); err != nil || len(frame) < 2 {
			http.Error(w, "short frame", http.StatusBadRequest)
			return
		}
		if err := f.log.AppendRecord(frame[0], frame[1:]); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		applied++
	}
	json.NewEncoder(w).Encode(wire.ReplicateResponse{Applied: applied})
}

// sessions rescans the follower log.
func (f *follower) sessions() []wal.Session {
	f.t.Helper()
	got, err := f.log.Rescan()
	if err != nil {
		f.t.Fatal(err)
	}
	return got
}

// newPair wires a primary ReplicatedLog to a follower over a two-node
// ring, returning both plus the primary's data directory.
func newPair(t *testing.T, opts ShipperOptions) (*ReplicatedLog, *follower, string) {
	t.Helper()
	f := newFollower(t)
	self := "http://primary.invalid"
	sh, err := NewShipper(self, []string{self, f.srv.URL}, opts)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	log, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		sh.Close()
		log.Close()
	})
	return NewReplicatedLog(log, sh), f, dir
}

func shipEvents(times ...int64) []stream.Event {
	out := make([]stream.Event, len(times))
	for i, ts := range times {
		out[i] = stream.Event{Time: ts, Payload: stream.Day{}}
	}
	return out
}

// TestReplicatedLogFollowerByteIdentity: a history written through a
// ReplicatedLog leaves the follower's segment files byte-identical to
// the primary's — replication really is the local append stream.
func TestReplicatedLogFollowerByteIdentity(t *testing.T) {
	rl, f, dir := newPair(t, ShipperOptions{})
	tenants := []string{"acme", "globex", "initech"}
	for _, tn := range tenants {
		if err := rl.LogOpen(tn, []byte(fmt.Sprintf(`{"tenant":%q}`, tn))); err != nil {
			t.Fatal(err)
		}
	}
	for round := int64(0); round < 5; round++ {
		for _, tn := range tenants {
			if err := rl.LogEvents(tn, shipEvents(round)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := rl.LogClose("globex"); err != nil {
		t.Fatal(err)
	}
	rl.sh.Flush()

	if st := rl.sh.Stats(); st.Shipped != 19 || st.Dropped != 0 || len(st.FailedPeers) != 0 {
		t.Fatalf("stats = %+v, want 19 shipped, none dropped", st)
	}
	pb, err := os.ReadFile(filepath.Join(dir, segName(t, dir)))
	if err != nil {
		t.Fatal(err)
	}
	fb, err := os.ReadFile(filepath.Join(f.dir, segName(t, f.dir)))
	if err != nil {
		t.Fatal(err)
	}
	if string(pb) != string(fb) {
		t.Fatalf("segment bytes diverged: primary %d bytes, follower %d bytes", len(pb), len(fb))
	}
}

// segName returns the single segment file in dir.
func segName(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var name string
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".wal" {
			continue
		}
		if name != "" {
			t.Fatalf("multiple segments in %s", dir)
		}
		name = e.Name()
	}
	if name == "" {
		t.Fatalf("no segment in %s", dir)
	}
	return name
}

// TestShipperResumesAfterAppliedCount: a batch answered with a
// structured error resumes exactly after the follower's applied count —
// no record is lost or double-applied.
func TestShipperResumesAfterAppliedCount(t *testing.T) {
	rl, f, _ := newPair(t, ShipperOptions{BatchRecords: 64, RetryWait: time.Millisecond})
	if err := rl.LogOpen("acme", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	rl.sh.Flush() // open lands alone so the fault hits a known batch

	f.mu.Lock()
	f.failAfter = 3 // next request dies after three records
	f.mu.Unlock()
	for day := int64(0); day < 10; day++ {
		if err := rl.LogEvents("acme", shipEvents(day)); err != nil {
			t.Fatal(err)
		}
	}
	rl.sh.Flush()

	got := f.sessions()
	if len(got) != 1 || len(got[0].Events) != 10 {
		t.Fatalf("follower sessions after partial-apply retry: %+v", got)
	}
	for i, ev := range got[0].Events {
		if ev.Time != int64(i) {
			t.Fatalf("event %d has time %d: records lost or duplicated", i, ev.Time)
		}
	}
	if st := rl.sh.Stats(); st.Shipped != 11 || len(st.FailedPeers) != 0 {
		t.Fatalf("stats = %+v, want 11 shipped and a healthy peer", st)
	}
}

// TestShipperAmbiguousFailureFailsPeer: a dropped connection mid-batch
// may have applied a prefix the primary cannot see, so the peer is
// failed outright and later records are dropped — the follower stays a
// clean prefix instead of gaining duplicates.
func TestShipperAmbiguousFailureFailsPeer(t *testing.T) {
	rl, f, _ := newPair(t, ShipperOptions{BatchRecords: 64, RetryWait: time.Millisecond})
	if err := rl.LogOpen("acme", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	rl.sh.Flush()

	f.mu.Lock()
	f.abort = true
	f.mu.Unlock()
	for day := int64(0); day < 6; day++ {
		if err := rl.LogEvents("acme", shipEvents(day)); err != nil {
			t.Fatal(err)
		}
	}
	rl.sh.Flush()
	if err := rl.LogEvents("acme", shipEvents(6)); err != nil { // post-failure: dropped
		t.Fatal(err)
	}
	rl.sh.Flush()

	st := rl.sh.Stats()
	if len(st.FailedPeers) != 1 || st.FailedPeers[0] != f.srv.URL {
		t.Fatalf("stats = %+v, want the peer failed", st)
	}
	if st.Dropped == 0 {
		t.Fatalf("stats = %+v, want dropped records counted", st)
	}
	// The follower holds a strict prefix: the open plus at most the
	// records applied before the abort, in order and without gaps.
	got := f.sessions()
	if len(got) != 1 {
		t.Fatalf("follower sessions: %+v", got)
	}
	for i, ev := range got[0].Events {
		if ev.Time != int64(i) {
			t.Fatalf("follower history is not a prefix: event %d has time %d", i, ev.Time)
		}
	}
}

// TestShipperSingleNodeNoop: a one-member ring has nowhere to ship;
// everything is a local append.
func TestShipperSingleNodeNoop(t *testing.T) {
	self := "http://solo.invalid"
	sh, err := NewShipper(self, []string{self}, ShipperOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	log, err := wal.Open(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	rl := NewReplicatedLog(log, sh)
	if err := rl.LogOpen("acme", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if err := rl.LogEvents("acme", shipEvents(0)); err != nil {
		t.Fatal(err)
	}
	sh.Flush()
	if st := sh.Stats(); st.Shipped != 0 || st.Dropped != 0 {
		t.Fatalf("single-node stats = %+v", st)
	}
	got, err := log.Rescan()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Events) != 1 {
		t.Fatalf("local log: %+v", got)
	}
}

// TestShipperRejectsStrangerSelf mirrors the server's config check.
func TestShipperRejectsStrangerSelf(t *testing.T) {
	if _, err := NewShipper("http://x.invalid", []string{"http://a.invalid", "http://b.invalid"}, ShipperOptions{}); err == nil {
		t.Fatal("NewShipper accepted a self outside the peer list")
	}
}
