package cluster

// The generated cluster reference. docs/CLUSTER.md is rendered from
// this package by cmd/leasereport — the placement section quotes the
// same constants the ring hashes with, and the scaling section is
// quantified from the committed BENCH_PR8.json — so the document
// cannot drift from the implementation.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// ScalingFleet is one cluster size's measurement inside a committed
// BENCH_PR8.json (`leaseload -cluster-bench`).
type ScalingFleet struct {
	Nodes           int     `json:"nodes"`
	EventsPerSec    float64 `json:"events_per_sec"`
	SpeedupVsSingle float64 `json:"speedup_vs_single"`
	ShippedRecords  int64   `json:"shipped_records"`
}

// ScalingBench is the committed cluster scaling benchmark
// ClusterMarkdown quantifies the scaling section from.
type ScalingBench struct {
	Tenants           int            `json:"tenants"`
	TotalEvents       int64          `json:"total_events"`
	ScalingEfficiency float64        `json:"scaling_efficiency"`
	Fleets            []ScalingFleet `json:"fleets"`
}

// LoadScalingBench reads a committed BENCH_PR8.json. It is shared by
// cmd/leasereport and the docs drift tests so both quantify the
// generated document from the same bytes.
func LoadScalingBench(path string) (*ScalingBench, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s ScalingBench
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", path, err)
	}
	return &s, nil
}

// ClusterMarkdown renders the body of docs/CLUSTER.md: tenant
// placement (from this package's ring constants), request routing,
// the log-shipping replication contract, the failover runbook, and the
// node-count scaling measurements (quantified from bench when
// non-nil). The output is a pure function of (this package, bench),
// which is what lets `leasereport -check` gate drift.
func ClusterMarkdown(bench *ScalingBench) []byte {
	var b bytes.Buffer
	b.WriteString(`# Clustering — placement, replication and failover

A cluster is N identical daemons started with the same ` + "`-peers`" + ` list
(` + "`leased -peers URL,URL,... -self URL -data-dir DIR`" + `). There is no
coordinator and no membership protocol: every node — and every
cluster-aware client — builds the same consistent-hash ring from the
shared peer list, so they all agree on which node owns which tenant
without talking to each other. Each node serves the tenants the ring
places on it, answers 307 for the rest, and streams every write-ahead
log record it appends to the tenant's replica, so killing a node fails
its tenants over onto a survivor already holding their full logged
history — and the recovered state is byte-identical to an
uninterrupted run.

This reference is generated from ` + "`internal/cluster`" + ` by
` + "`cmd/leasereport`" + ` (the ` + "`-check`" + ` gate keeps it byte-identical to the
code). The operator view — flags, drill commands, monitoring — is in
[OPERATIONS.md](OPERATIONS.md); the single-node durability layer the
replication builds on is in [DURABILITY.md](DURABILITY.md); the layer
diagram is in [ARCHITECTURE.md](ARCHITECTURE.md).

## Tenant placement

`)
	fmt.Fprintf(&b, `The ring hashes every member to %d virtual points (FNV-64a of the
member URL, salted per point and mixed through a SplitMix64 finalizer,
so nearly-identical URLs still scatter). A tenant is owned by the
member whose point follows the tenant's hash clockwise. Two properties
make this the right placement for a stateful fleet:

- **Bounded load.** `+"`Place`"+` caps every member at
  `+"`ceil(%.2f * tenants / members)`"+` sessions and spills an
  over-cap tenant to its next distinct successor, so one hot arc of
  the ring cannot overload a node.
- **Minimal movement.** Removing a member moves only the tenants it
  owned; every other tenant keeps its node (the property tests pin
  both bounds).

The keystone is where a removed member's tenants land: each moves to
its **replica** — the next distinct member clockwise from its hash.
That is exactly the node its WAL records are shipped to, so failover
traffic arrives where the tenant's history already lives.

`, DefaultVnodes, DefaultLoadFactor)
	b.WriteString(`## Request routing

A tenant-scoped request to the wrong node is answered with a ` + "`307`" + `
to the same path on the owner. 307 preserves the method and body, and
Go's ` + "`http.Client`" + ` re-sends both (bearer token included)
transparently — so a client with a stale peer list still works, it
just pays an extra hop per request. The cluster client
(` + "`leasing.DialCluster`" + `) builds the ring itself and routes every
tenant straight to its owner, so in steady state no request redirects.
A tenant already active locally — as it is after a failover activation
— is served locally even though the static ring places it elsewhere.
Health, metrics and the replication endpoints never redirect.

## Replication — log shipping

Every node wraps its write-ahead log in a shipper
(` + "`leasing.ReplicateDurableLog`" + `): each record the log appends — open,
event batch, close — is also sent, **byte-identical**, to the
tenant's replica over ` + "`POST /v1/replica/records`" + ` (the binary wire
framing, admin scope). The receiving node appends the records to a
separate **follower log** (` + "`<data-dir>/follower`" + `), which therefore
holds, record for record, the same bytes the primary's own log holds
for those tenants — the byte-identity the failover verification
leans on.

Shipping is asynchronous and ordered per tenant, and its delivery
contract is **prefix consistency**: whatever happens, a follower log
is always a clean prefix of the primary's per-tenant record stream.

- A structured rejection carries how many records the follower
  applied; the shipper resumes after exactly that count.
- An ambiguous failure (connection lost mid-request — the batch may
  or may not have been applied) **sticky-fails the peer**: the shipper
  stops shipping to it rather than risk re-sending a possibly-applied
  batch. A gap or a double-apply would corrupt the follower; a frozen
  prefix just means a longer resume after failover.
- A full outbound queue fails the peer the same way — dropping one
  record in the middle would be a gap.

Failed peers appear in the shipper's stats, the daemon's drain log
line, and the ` + "`leased_shipper_failed_peers`" + ` metric. A failed peer's
follower copy is frozen but intact: events acknowledged after the
failure exist only on the primary, and a failover then recovers the
shorter prefix — clients re-send the difference, exactly as they do
for unshipped tail records (see the runbook). To re-establish a full
copy, fail the tenant over (adoption re-logs its history through the
new owner's replicated WAL, shipping it onward) or restart the fleet
node so shipping starts fresh from a recovered, compacted log.

One deliberate asymmetry: **boot never re-ships.** Recovery rebuilds
sessions by replaying the local log without re-logging, so a restarted
node does not flood its peers with history they already hold.

## Failover runbook

1. **A node dies.** Mark it down on the cluster client
   (` + "`MarkDown`" + `): the live ring drops the node and the dead node's
   tenants route to their replicas. Other tenants keep their owners —
   minimal movement again.
2. **Activate the replicas.** ` + "`Activate`" + ` posts the down list to
   every survivor (` + "`POST /v1/replica/activate`" + `). A survivor adopts a
   follower session only if the tenant's ring owner is in the down
   list **and** it is the tenant's first live successor — so exactly
   one survivor claims each tenant, and tenants whose primary is
   healthy are never touched even though survivors' follower logs
   hold them. Adoption first copies the shipped history into the
   survivor's own write-ahead log (which, being replicated itself,
   ships the tenant onward to its next replica), then rebuilds the
   session from its logged spec and replays — the same event-sourced
   recovery the single-node daemon runs on boot.
3. **Resume ingestion.** After a failover, the authoritative resume
   point is the new owner's processed-event count (flush, then read
   it): records the dead node acknowledged but never shipped are gone
   from the cluster and must be re-sent, and the count says exactly
   where from. The cluster client's ` + "`SubmitResume`" + ` does this loop —
   resync, resume, never re-send what the new owner holds, never skip
   what it lost.
4. **Verify.** ` + "`go run ./cmd/leaseload -crash -cluster -leased <binary>`" + `
   runs the whole drill: spawn a fleet, SIGKILL the busiest node
   mid-load, fail over, resume, and byte-compare every tenant against
   a single-threaded replay of its full history.

## Scaling

`)
	if bench != nil {
		fmt.Fprintf(&b, `The committed [BENCH_PR8.json](../BENCH_PR8.json)
(`+"`leaseload -cluster-bench`"+`, %d mixed-domain tenants, %d events,
every node durable and shipping) measures ingestion throughput against
cluster size on the baseline hardware:

| Nodes | Throughput | Speedup | Shipped records |
| --- | --- | --- | --- |
`, bench.Tenants, bench.TotalEvents)
		for _, f := range bench.Fleets {
			fmt.Fprintf(&b, "| %d | %.0f events/s | %.2fx | %d |\n",
				f.Nodes, f.EventsPerSec, f.SpeedupVsSingle, f.ShippedRecords)
		}
		fmt.Fprintf(&b, `
Scaling efficiency — the largest fleet's speedup over one node,
divided by its node count — is **%.2f**. Read it as a cost floor, not
a capacity ceiling: the bench co-locates every fleet on one host, so
the nodes split the same cores and the speedup column isolates what
replication itself costs (ship, follower append, redirect-free
routing) rather than what added hardware buys. Two further caveats
carry over to real fleets: placement spreads tenants, not events — a
skewed workload (`+"`-zipf-sizes`"+`) scales by the load of the busiest
node's tenants — and every shipped record is a second append, so a
fleet buys capacity only when nodes stop sharing spindles and cores.
`, bench.ScalingEfficiency)
	} else {
		b.WriteString(`No committed BENCH_PR8.json was found next to this document, so the
scaling trade-off is not quantified here; regenerate it with
` + "`go run ./cmd/leaseload -cluster-bench -out BENCH_PR8.json`" + ` and then
regenerate this document.
`)
	}
	return b.Bytes()
}
