// Package cluster places tenants on a fleet of lease-service nodes and
// ships their write-ahead-log records to a replica, so that one node's
// death fails its tenants over with byte-identical recovered state.
//
// Placement is consistent hashing with virtual nodes: each member is
// hashed onto a ring at Vnodes points, and a tenant is owned by the
// first member clockwise from its own hash. Ownership of a tenant is a
// pure function of (members, tenant) — independent of every other
// tenant — so a membership change moves only the tenants owned by (or
// newly claimed by) the affected node, never reshuffles the rest. The
// replica of a tenant is the next distinct member clockwise, which is
// exactly where the tenant lands when its owner is removed from the
// ring: shipped history is already sitting on the failover target.
//
// Place layers the bounded-load variant on top for balance-sensitive
// callers: no node is assigned more than ceil(factor·T/N) tenants, with
// overflow walking clockwise to the next member with spare capacity.
package cluster

import (
	"fmt"
	"sort"
)

// DefaultVnodes is the virtual-node count per member. 256 points per
// member keeps the seeded balance and movement properties in
// ring_test.go within their bounds up to 16 nodes.
const DefaultVnodes = 256

// DefaultLoadFactor is the bounded-load cap multiplier used by Place
// callers that have no reason to pick another: no member is assigned
// more than ceil(1.25·T/N) tenants.
const DefaultLoadFactor = 1.25

// Ring is an immutable consistent-hash ring over a member set. Create
// it with New; derive membership changes with With/Without. All methods
// are safe for concurrent use.
type Ring struct {
	vnodes  int
	members []string // sorted, unique
	points  []point  // sorted by hash
}

// point is one virtual node: a position on the ring owned by a member.
type point struct {
	hash   uint64
	member int // index into members
}

// New builds a ring over the given members with vnodes virtual nodes
// each (DefaultVnodes when vnodes <= 0). Member order does not matter;
// duplicates and empty names are rejected.
func New(members []string, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	for i, m := range sorted {
		if m == "" {
			return nil, fmt.Errorf("cluster: empty member name")
		}
		if i > 0 && sorted[i-1] == m {
			return nil, fmt.Errorf("cluster: duplicate member %q", m)
		}
	}
	r := &Ring{
		vnodes:  vnodes,
		members: sorted,
		points:  make([]point, 0, vnodes*len(sorted)),
	}
	for mi, m := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: vnodeHash(m, v), member: mi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Hash ties (vanishingly rare) break on the member name so the
		// ring stays a pure function of the member set.
		return r.members[a.member] < r.members[b.member]
	})
	return r, nil
}

// Members returns the member set, sorted.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Has reports whether member is in the ring.
func (r *Ring) Has(member string) bool {
	i := sort.SearchStrings(r.members, member)
	return i < len(r.members) && r.members[i] == member
}

// Without derives a ring with member removed.
func (r *Ring) Without(member string) (*Ring, error) {
	if !r.Has(member) {
		return nil, fmt.Errorf("cluster: %q is not a member", member)
	}
	rest := make([]string, 0, len(r.members)-1)
	for _, m := range r.members {
		if m != member {
			rest = append(rest, m)
		}
	}
	return New(rest, r.vnodes)
}

// With derives a ring with member added.
func (r *Ring) With(member string) (*Ring, error) {
	return New(append(r.Members(), member), r.vnodes)
}

// Owner returns the member owning the tenant: the first virtual node
// clockwise from the tenant's hash.
func (r *Ring) Owner(tenant string) string {
	return r.members[r.points[r.ownerPoint(tenant)].member]
}

// ownerPoint finds the index of the tenant's owning virtual node.
func (r *Ring) ownerPoint(tenant string) int {
	h := ringHash(tenant)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the top of the ring
	}
	return i
}

// Successors returns the first n distinct members clockwise from the
// tenant's hash: index 0 is the owner, index 1 the replica, and so on.
// Fewer are returned when the ring has fewer members.
func (r *Ring) Successors(tenant string, n int) []string {
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i, start := 0, r.ownerPoint(tenant); len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}

// Replica returns the tenant's replica — the next distinct member
// clockwise from the owner — or "" on a single-member ring. Removing
// the owner makes the replica the new owner, which is why shipping a
// tenant's records to its replica is exactly failover preparation.
func (r *Ring) Replica(tenant string) string {
	s := r.Successors(tenant, 2)
	if len(s) < 2 {
		return ""
	}
	return s[1]
}

// Cap is the bounded-load assignment limit: ceil(factor·tenants/members),
// and never below 1.
func Cap(tenants, members int, factor float64) int {
	if factor < 1 {
		factor = 1
	}
	c := int(factor * float64(tenants) / float64(members))
	if float64(c)*float64(members) < factor*float64(tenants) {
		c++
	}
	if c < 1 {
		c = 1
	}
	return c
}

// Place assigns every tenant a member with the bounded-load variant: no
// member receives more than Cap(len(tenants), members, factor) tenants;
// a tenant whose owner is full walks clockwise to the next member with
// spare capacity. Tenants are processed in ring order (hash, then
// name), so the table is a pure function of (members, tenants, factor)
// and every node and client computes the same one. Duplicate tenants
// are rejected.
func (r *Ring) Place(tenants []string, factor float64) (map[string]string, error) {
	if factor <= 0 {
		factor = DefaultLoadFactor
	}
	ordered := append([]string(nil), tenants...)
	sort.Slice(ordered, func(i, j int) bool {
		hi, hj := ringHash(ordered[i]), ringHash(ordered[j])
		if hi != hj {
			return hi < hj
		}
		return ordered[i] < ordered[j]
	})
	for i := 1; i < len(ordered); i++ {
		if ordered[i-1] == ordered[i] {
			return nil, fmt.Errorf("cluster: duplicate tenant %q", ordered[i])
		}
	}
	limit := Cap(len(tenants), len(r.members), factor)
	load := make([]int, len(r.members))
	out := make(map[string]string, len(tenants))
	for _, t := range ordered {
		placed := false
		seen := make(map[int]bool, len(r.members))
		for i, start := 0, r.ownerPoint(t); i < len(r.points) && !placed; i++ {
			p := r.points[(start+i)%len(r.points)]
			if seen[p.member] {
				continue
			}
			seen[p.member] = true
			if load[p.member] < limit {
				load[p.member]++
				out[t] = r.members[p.member]
				placed = true
			}
		}
		if !placed {
			// Unreachable: limit·members >= tenants by construction.
			return nil, fmt.Errorf("cluster: no capacity for tenant %q", t)
		}
	}
	return out, nil
}

// vnodeHash positions one virtual node. FNV alone leaves per-member
// vnode sets near-translations of each other (its multiply only
// diffuses upward), which correlates the arcs; the finalizer gives
// every bit of (member, index) full avalanche so the sets are
// independent.
func vnodeHash(member string, v int) uint64 {
	return finalize(fnv64a(member) ^ (uint64(v) + 0x9e3779b97f4a7c15))
}

// ringHash positions a tenant on the ring.
func ringHash(tenant string) uint64 {
	return finalize(fnv64a(tenant))
}

// finalize is the splitmix64 finalizer: a bijective full-avalanche mix.
func finalize(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// fnv64a is the 64-bit FNV-1a hash — dependency-free and stable across
// platforms, so placement is identical on every node and client.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
