package cluster

// Log shipping: a Shipper streams a node's acknowledged WAL records to
// each tenant's next successor on the ring, over the binary wire
// framing. ReplicatedLog is the engine-facing wrapper that appends a
// record locally and hands the same bytes to the Shipper — so a
// follower log is byte-compatible with one the tenant wrote locally.
//
// Delivery guarantees are deliberately asymmetric: a follower is always
// a clean prefix of the primary's acknowledged record stream, never a
// corrupted middle. Per-peer queues are FIFO and a batch that fails
// with a structured error resumes exactly after the server's applied
// count; a batch that fails ambiguously (transport error — the peer
// may or may not have applied a prefix) stops replication to that peer
// for the life of the process instead of risking double-applied
// records. Failover resumes any lost suffix from the client side, which
// replays events after the recovered processed count.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"leasing/internal/stream"
	"leasing/internal/wal"
	"leasing/internal/wire"
)

// ShipperOptions shapes a Shipper.
type ShipperOptions struct {
	// Token is sent as the bearer token when non-empty (the replicate
	// endpoint is admin-scoped).
	Token string
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
	// QueueDepth bounds each peer's outbound record queue. A full queue
	// fails the peer (see package comment). Default 8192.
	QueueDepth int
	// BatchRecords caps records per replicate request. Default 256.
	BatchRecords int
	// Retries is how many times a batch with a structured error response
	// is resumed before the peer is failed. Default 3.
	Retries int
	// RetryWait is the pause between those resumptions. Default 50ms.
	RetryWait time.Duration
}

func (o ShipperOptions) withDefaults() ShipperOptions {
	if o.HTTPClient == nil {
		o.HTTPClient = http.DefaultClient
	}
	if o.QueueDepth < 1 {
		o.QueueDepth = 8192
	}
	if o.BatchRecords < 1 {
		o.BatchRecords = 256
	}
	if o.Retries < 1 {
		o.Retries = 3
	}
	if o.RetryWait <= 0 {
		o.RetryWait = 50 * time.Millisecond
	}
	return o
}

// ShipperStats samples a Shipper's counters.
type ShipperStats struct {
	// Shipped counts records acknowledged by peers.
	Shipped int64
	// Batches counts replicate requests that succeeded.
	Batches int64
	// Dropped counts records discarded because their peer had failed.
	Dropped int64
	// FailedPeers lists peers replication has given up on, sorted.
	FailedPeers []string
}

// shipRec is one queued record.
type shipRec struct {
	kind    byte
	payload []byte // owned by the shipper
}

// peerQueue is one peer's outbound FIFO.
type peerQueue struct {
	url string
	ch  chan shipRec

	mu     sync.Mutex
	idle   bool // worker drained the queue and is blocked receiving
	failed bool
	cond   *sync.Cond
}

// Shipper streams WAL records to ring successors. Create it with
// NewShipper; Ship is safe for concurrent use. Per-tenant record order
// is the caller's call order, as with the WAL itself.
type Shipper struct {
	self  string
	ring  *Ring
	opts  ShipperOptions
	peers map[string]*peerQueue

	mu      sync.Mutex
	shipped int64
	batches int64
	dropped int64

	closed atomic.Bool
	wg     sync.WaitGroup
}

// NewShipper builds a shipper for self inside the peer ring. Peers
// other than self each get an outbound queue and a worker goroutine.
func NewShipper(self string, peers []string, opts ShipperOptions) (*Shipper, error) {
	ring, err := New(peers, 0)
	if err != nil {
		return nil, err
	}
	if !ring.Has(self) {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list", self)
	}
	s := &Shipper{self: self, ring: ring, opts: opts.withDefaults(), peers: map[string]*peerQueue{}}
	for _, p := range ring.Members() {
		if p == self {
			continue
		}
		q := &peerQueue{url: p, ch: make(chan shipRec, s.opts.QueueDepth)}
		q.cond = sync.NewCond(&q.mu)
		s.peers[p] = q
		s.wg.Add(1)
		go s.run(q)
	}
	return s, nil
}

// Ring returns the shipper's placement ring (shared with the server's
// redirect logic and the cluster client).
func (s *Shipper) Ring() *Ring { return s.ring }

// destFor picks where a tenant's records ship: the next distinct
// member after self in the tenant's successor order. For the tenant's
// owner that is its replica; for a node that adopted the tenant at
// failover it is the next live candidate down the chain — so adopted
// history keeps a copy off-node too.
func (s *Shipper) destFor(tenant string) *peerQueue {
	succ := s.ring.Successors(tenant, len(s.ring.members))
	for i, m := range succ {
		if m == s.self {
			return s.peers[succ[(i+1)%len(succ)]] // nil for self (single node)
		}
	}
	// Self not in the successor list is impossible — Successors spans
	// every member — but routing to the replica loses nothing.
	return s.peers[s.ring.Replica(tenant)]
}

// Ship enqueues one acknowledged record for the tenant's successor.
// The payload is copied: callers may reuse their buffer. A full or
// failed peer drops the record and, if the queue was full, fails the
// peer — the follower stays a clean prefix (see package comment).
func (s *Shipper) Ship(tenant string, kind byte, payload []byte) {
	q := s.destFor(tenant)
	if q == nil {
		return // single-node ring: nothing to replicate to
	}
	q.mu.Lock()
	// Checked under q.mu, which Close holds while closing the channel:
	// a Ship that sees closed=false here sends before the close.
	if q.failed || s.closed.Load() {
		q.mu.Unlock()
		s.count(&s.dropped, 1)
		return
	}
	rec := shipRec{kind: kind, payload: append([]byte(nil), payload...)}
	select {
	case q.ch <- rec:
		q.idle = false
		q.mu.Unlock()
	default:
		// Backpressure from a peer that cannot keep up. Blocking here
		// would stall the primary's append path; skipping one record
		// would corrupt the follower. Fail the whole peer instead.
		q.failed = true
		q.mu.Unlock()
		s.count(&s.dropped, 1)
	}
}

func (s *Shipper) count(c *int64, n int64) {
	s.mu.Lock()
	*c += n
	s.mu.Unlock()
}

// run is one peer's worker: it drains the queue into batched replicate
// requests, preserving FIFO order.
func (s *Shipper) run(q *peerQueue) {
	defer s.wg.Done()
	for {
		rec, ok := s.next(q)
		if !ok {
			return
		}
		batch := []shipRec{rec}
		// Opportunistically coalesce whatever is already queued.
	drain:
		for len(batch) < s.opts.BatchRecords {
			select {
			case more, ok := <-q.ch:
				if !ok {
					break drain
				}
				batch = append(batch, more)
			default:
				break drain
			}
		}
		s.send(q, batch)
	}
}

// next blocks for the next record, marking the queue idle while empty
// (Flush watches that flag).
func (s *Shipper) next(q *peerQueue) (shipRec, bool) {
	select {
	case rec, ok := <-q.ch:
		return rec, ok
	default:
	}
	q.mu.Lock()
	q.idle = true
	q.cond.Broadcast()
	q.mu.Unlock()
	rec, ok := <-q.ch
	q.mu.Lock()
	q.idle = false
	q.mu.Unlock()
	return rec, ok
}

// send delivers one batch, resuming after the server's applied count on
// structured errors and failing the peer on ambiguity.
func (s *Shipper) send(q *peerQueue, batch []shipRec) {
	q.mu.Lock()
	failed := q.failed
	q.mu.Unlock()
	if failed {
		s.count(&s.dropped, int64(len(batch)))
		s.markIdleIfDrained(q)
		return
	}
	offset := 0
	for attempt := 0; attempt <= s.opts.Retries; attempt++ {
		applied, err := s.post(q.url, batch[offset:])
		offset += applied
		s.count(&s.shipped, int64(applied))
		if err == nil && offset == len(batch) {
			s.count(&s.batches, 1)
			s.markIdleIfDrained(q)
			return
		}
		if _, structured := err.(*wire.Error); !structured {
			break // ambiguous: the peer may hold an unacknowledged prefix
		}
		time.Sleep(s.opts.RetryWait)
	}
	q.mu.Lock()
	q.failed = true
	q.mu.Unlock()
	s.count(&s.dropped, int64(len(batch)-offset))
}

// markIdleIfDrained republishes idleness after a send if nothing is
// queued, so Flush cannot miss the worker between batches.
func (s *Shipper) markIdleIfDrained(q *peerQueue) {
	if len(q.ch) != 0 {
		return
	}
	q.mu.Lock()
	if len(q.ch) == 0 {
		q.idle = true
		q.cond.Broadcast()
	}
	q.mu.Unlock()
}

// post sends one replicate request and returns how many records the
// peer applied. A structured wire error is returned as *wire.Error
// (with its applied count already extracted); anything else is
// ambiguous.
func (s *Shipper) post(url string, recs []shipRec) (int, error) {
	var body bytes.Buffer
	body.WriteString(wire.BinaryMagic)
	frame := make([]byte, 0, 512)
	for _, rec := range recs {
		frame = frame[:0]
		frame = append(frame, rec.kind)
		frame = append(frame, rec.payload...)
		b := body.AvailableBuffer()
		body.Write(wire.AppendFrame(b, frame))
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/replica/records", &body)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", wire.ContentTypeBinary)
	if s.opts.Token != "" {
		req.Header.Set("Authorization", "Bearer "+s.opts.Token)
	}
	resp, err := s.opts.HTTPClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		apiErr := &wire.Error{}
		if err := json.NewDecoder(resp.Body).Decode(apiErr); err != nil || apiErr.Code == "" {
			return 0, fmt.Errorf("cluster: replicate: unexpected status %d", resp.StatusCode)
		}
		return apiErr.Accepted, apiErr
	}
	var ack wire.ReplicateResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return 0, err // acknowledged but unreadable: ambiguous
	}
	io.Copy(io.Discard, resp.Body)
	return ack.Applied, nil
}

// Flush blocks until every queued record has been sent (or its peer
// failed). It is the replication barrier the drill uses before killing
// a node.
func (s *Shipper) Flush() {
	for _, q := range s.peers {
		q.mu.Lock()
		for !q.idle && !q.failed {
			q.cond.Wait()
		}
		q.mu.Unlock()
	}
}

// Close drains and stops the workers. Further Ship calls are counted
// as drops; further Close calls are no-ops.
func (s *Shipper) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.Flush()
	for _, q := range s.peers {
		q.mu.Lock()
		close(q.ch)
		q.mu.Unlock()
	}
	s.wg.Wait()
}

// Stats samples the shipper.
func (s *Shipper) Stats() ShipperStats {
	s.mu.Lock()
	st := ShipperStats{Shipped: s.shipped, Batches: s.batches, Dropped: s.dropped}
	s.mu.Unlock()
	for p, q := range s.peers {
		q.mu.Lock()
		if q.failed {
			st.FailedPeers = append(st.FailedPeers, p)
		}
		q.mu.Unlock()
	}
	sort.Strings(st.FailedPeers)
	return st
}

// ReplicatedLog wraps a node's write-ahead log so every acknowledged
// record is also shipped to the tenant's ring successor. It implements
// the engine's WAL interface; the record bytes appended locally and
// shipped are identical.
type ReplicatedLog struct {
	log *wal.Log
	sh  *Shipper
}

// NewReplicatedLog wraps log with shipping through sh.
func NewReplicatedLog(log *wal.Log, sh *Shipper) *ReplicatedLog {
	return &ReplicatedLog{log: log, sh: sh}
}

// Log returns the wrapped local log.
func (r *ReplicatedLog) Log() *wal.Log { return r.log }

// LogOpen appends and ships a session-open record.
func (r *ReplicatedLog) LogOpen(tenant string, spec []byte) error {
	payload, err := wal.EncodeOpenRecord(tenant, spec)
	if err != nil {
		return err
	}
	if err := r.log.AppendRecord(wal.KindOpen, payload); err != nil {
		return err
	}
	r.sh.Ship(tenant, wal.KindOpen, payload)
	return nil
}

// LogEvents appends and ships one acknowledged event batch.
func (r *ReplicatedLog) LogEvents(tenant string, evs []stream.Event) error {
	payload, err := wal.AppendEventsRecord(nil, tenant, evs)
	if err != nil {
		return err
	}
	if err := r.log.AppendRecord(wal.KindEventsBinary, payload); err != nil {
		return err
	}
	r.sh.Ship(tenant, wal.KindEventsBinary, payload)
	return nil
}

// LogClose appends and ships a session-close record.
func (r *ReplicatedLog) LogClose(tenant string) error {
	payload, err := wal.EncodeCloseRecord(tenant)
	if err != nil {
		return err
	}
	if err := r.log.AppendRecord(wal.KindClose, payload); err != nil {
		return err
	}
	r.sh.Ship(tenant, wal.KindClose, payload)
	return nil
}
