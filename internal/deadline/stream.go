package deadline

import (
	"fmt"

	"leasing/internal/lease"
	"leasing/internal/setcover"
	"leasing/internal/stream"
)

// Leaser adapts the OLD primal-dual Online algorithm to the unified
// stream protocol. The single resource is item 0; each Window payload is
// one flexible client (t, d).
type Leaser struct {
	alg      *Online
	seen     map[lease.Lease]struct{}
	lastCost float64
}

var _ stream.Leaser = (*Leaser)(nil)

// NewLeaser wraps an OLD algorithm as a stream.Leaser.
func NewLeaser(alg *Online) *Leaser {
	return &Leaser{alg: alg, seen: make(map[lease.Lease]struct{})}
}

// Observe implements stream.Leaser. It accepts Window payloads.
func (l *Leaser) Observe(ev stream.Event) (stream.Decision, error) {
	p, ok := ev.Payload.(stream.Window)
	if !ok {
		return stream.Decision{}, fmt.Errorf("deadline: unsupported payload %T", ev.Payload)
	}
	if err := l.alg.Arrive(ev.Time, p.D); err != nil {
		return stream.Decision{}, err
	}
	// A client served for free (skip rule) left the total bit-identical;
	// skip the O(L) purchase-set diff.
	if l.alg.TotalCost() == l.lastCost {
		return stream.Decision{}, nil
	}
	d := stream.Decision{Cost: l.alg.TotalCost() - l.lastCost}
	l.lastCost = l.alg.TotalCost()
	for _, ls := range l.alg.Leases() {
		if _, ok := l.seen[ls]; ok {
			continue
		}
		l.seen[ls] = struct{}{}
		d.Leases = append(d.Leases, stream.ItemLease{Item: 0, K: ls.K, Start: ls.Start})
	}
	stream.SortItemLeases(d.Leases)
	return d, nil
}

// Cost implements stream.Leaser.
func (l *Leaser) Cost() stream.CostBreakdown {
	return stream.CostBreakdown{Lease: l.alg.TotalCost()}
}

// Snapshot implements stream.Leaser.
func (l *Leaser) Snapshot() stream.Solution {
	ls := l.alg.Leases()
	sol := stream.Solution{Leases: make([]stream.ItemLease, len(ls))}
	for i, x := range ls {
		sol.Leases[i] = stream.ItemLease{Item: 0, K: x.K, Start: x.Start}
	}
	stream.SortItemLeases(sol.Leases)
	return sol
}

// SCLDStream adapts the SCLD randomized algorithm to the unified stream
// protocol. Items are set indices; each ElementWindow payload is one
// deadline demand (element, window).
type SCLDStream struct {
	alg      *SCLDOnline
	seen     map[setcover.SetLease]struct{}
	lastCost float64
}

var _ stream.Leaser = (*SCLDStream)(nil)

// NewSCLDStream wraps an SCLD algorithm as a stream.Leaser.
func NewSCLDStream(alg *SCLDOnline) *SCLDStream {
	return &SCLDStream{alg: alg, seen: make(map[setcover.SetLease]struct{})}
}

// Observe implements stream.Leaser. It accepts ElementWindow payloads.
func (l *SCLDStream) Observe(ev stream.Event) (stream.Decision, error) {
	p, ok := ev.Payload.(stream.ElementWindow)
	if !ok {
		return stream.Decision{}, fmt.Errorf("deadline: unsupported payload %T", ev.Payload)
	}
	if err := l.alg.Arrive(ev.Time, p.Elem, p.D); err != nil {
		return stream.Decision{}, err
	}
	// A demand covered by existing triples left the total bit-identical;
	// skip the O(L) purchase-set diff.
	if l.alg.TotalCost() == l.lastCost {
		return stream.Decision{}, nil
	}
	d := stream.Decision{Cost: l.alg.TotalCost() - l.lastCost}
	l.lastCost = l.alg.TotalCost()
	for sl := range l.alg.bought {
		if _, ok := l.seen[sl]; ok {
			continue
		}
		l.seen[sl] = struct{}{}
		d.Leases = append(d.Leases, stream.ItemLease{Item: sl.Set, K: sl.K, Start: sl.Start})
	}
	stream.SortItemLeases(d.Leases)
	return d, nil
}

// Cost implements stream.Leaser.
func (l *SCLDStream) Cost() stream.CostBreakdown {
	return stream.CostBreakdown{Lease: l.alg.TotalCost()}
}

// Snapshot implements stream.Leaser.
func (l *SCLDStream) Snapshot() stream.Solution {
	bought := l.alg.Bought()
	sol := stream.Solution{Leases: make([]stream.ItemLease, len(bought))}
	for i, sl := range bought {
		sol.Leases[i] = stream.ItemLease{Item: sl.Set, K: sl.K, Start: sl.Start}
	}
	stream.SortItemLeases(sol.Leases)
	return sol
}

// SCLDEvents converts SCLD arrivals into ElementWindow events.
func SCLDEvents(arrivals []SCLDArrival) []stream.Event {
	out := make([]stream.Event, len(arrivals))
	for i, a := range arrivals {
		out[i] = stream.Event{Time: a.T, Payload: stream.ElementWindow{Elem: a.Elem, D: a.D}}
	}
	return out
}
