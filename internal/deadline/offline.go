package deadline

import (
	"errors"
	"fmt"
	"sort"

	"leasing/internal/ilp"
	"leasing/internal/lease"
	"leasing/internal/lp"
	"leasing/internal/workload"
)

// Optimal computes the exact offline optimum of an OLD instance by branch
// and bound over the aligned candidate leases intersecting at least one
// client window (a client is served by any lease whose window meets its
// own). nodeLimit <= 0 uses the solver default.
func Optimal(in *Instance, nodeLimit int) (float64, error) {
	if len(in.Clients) == 0 {
		return 0, nil
	}
	candIdx := map[lease.Lease]int{}
	var cands []lease.Lease
	for _, c := range in.Clients {
		for _, l := range in.Cfg.IntersectingAll(c.T, c.T+c.D) {
			if _, ok := candIdx[l]; !ok {
				candIdx[l] = len(cands)
				cands = append(cands, l)
			}
		}
	}
	costs := make([]float64, len(cands))
	for i, l := range cands {
		costs[i] = in.Cfg.Cost(l.K)
	}
	prob := ilp.NewBinaryMinimize(costs)
	for _, c := range in.Clients {
		row := map[int]float64{}
		for _, l := range in.Cfg.IntersectingAll(c.T, c.T+c.D) {
			row[candIdx[l]] = 1
		}
		if err := prob.Add(row, lp.GE, 1); err != nil {
			return 0, err
		}
	}
	res, err := prob.Solve(ilp.Options{NodeLimit: nodeLimit})
	if err != nil {
		return 0, fmt.Errorf("deadline: offline ILP: %w", err)
	}
	if !res.Proven {
		return res.Objective, errors.New("deadline: offline ILP hit node limit")
	}
	return res.Objective, nil
}

// LPLowerBound returns the LP relaxation bound for large instances.
func LPLowerBound(in *Instance) (float64, error) {
	if len(in.Clients) == 0 {
		return 0, nil
	}
	candIdx := map[lease.Lease]int{}
	var cands []lease.Lease
	for _, c := range in.Clients {
		for _, l := range in.Cfg.IntersectingAll(c.T, c.T+c.D) {
			if _, ok := candIdx[l]; !ok {
				candIdx[l] = len(cands)
				cands = append(cands, l)
			}
		}
	}
	costs := make([]float64, len(cands))
	for i, l := range cands {
		costs[i] = in.Cfg.Cost(l.K)
	}
	prob := lp.NewMinimize(costs)
	for _, c := range in.Clients {
		row := map[int]float64{}
		for _, l := range in.Cfg.IntersectingAll(c.T, c.T+c.D) {
			row[candIdx[l]] = 1
		}
		if err := prob.Add(row, lp.GE, 1); err != nil {
			return 0, err
		}
	}
	sol, err := prob.Solve()
	if err != nil {
		return 0, err
	}
	if sol.Status != lp.Optimal {
		return 0, fmt.Errorf("deadline: LP status %v", sol.Status)
	}
	return sol.Objective, nil
}

// GreedySingleType computes the exact optimum for K=1 configurations with
// the classical deadline greedy: walk clients by deadline; whenever a
// client's window is unserved, buy the aligned lease containing its
// deadline day (the last window that can still serve it). Used as an
// independent cross-check of the ILP.
func GreedySingleType(in *Instance) (float64, []lease.Lease, error) {
	if in.Cfg.K() != 1 {
		return 0, nil, fmt.Errorf("deadline: greedy needs K=1, got %d", in.Cfg.K())
	}
	clients := make([]workload.DeadlineClient, len(in.Clients))
	copy(clients, in.Clients)
	sort.Slice(clients, func(i, j int) bool { return clients[i].T+clients[i].D < clients[j].T+clients[j].D })
	st := lease.NewStore(in.Cfg)
	for _, c := range clients {
		if servedWithin(in.Cfg, st, c.T, c.D) {
			continue
		}
		st.Buy(in.Cfg.AlignedLease(0, c.T+c.D))
	}
	return st.TotalCost(), st.Leases(), nil
}

// TightInstance builds the lower-bound instance of Proposition 5.4
// (Figure 5.3): a short lease type (length lmin, cost 1) and a long one
// (length 2^ceil(log2 dmax), cost 1+eps); one patient client (0, dmax) and
// impatient clients with windows [(i-1)*lmin, i*lmin] for i = 2..dmax/lmin.
// The online algorithm pays Θ(dmax/lmin) while OPT buys the single long
// lease for 1+eps.
func TightInstance(lmin, dmax int64, eps float64) (*Instance, error) {
	if lmin < 1 || dmax < 2*lmin {
		return nil, fmt.Errorf("deadline: need lmin >= 1 and dmax >= 2*lmin, got %d, %d", lmin, dmax)
	}
	cfg := lease.TwoTypeConfig(lmin, dmax+1, eps)
	lmin = cfg.LMin() // after power-of-two rounding
	clients := []workload.DeadlineClient{{T: 0, D: dmax}}
	for i := int64(2); i <= dmax/lmin; i++ {
		clients = append(clients, workload.DeadlineClient{T: (i - 1) * lmin, D: lmin})
	}
	return NewInstance(cfg, clients)
}
