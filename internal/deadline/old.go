// Package deadline implements Chapter 5 of the thesis: online leasing with
// flexible demands. In OnlineLeasingWithDeadlines (OLD) a client arriving
// at day t with slack d may be served on any day of its window [t, t+d] by
// any lease covering that day; the deterministic primal-dual algorithm of
// Section 5.3 is Θ(K + d_max/l_min)-competitive (O(K) when all slacks are
// equal). The package also implements the tight example of Proposition 5.4
// (Figure 5.3), SetCoverLeasingWithDeadlines (SCLD, Section 5.5) with its
// randomized algorithm, and exact offline optima for both.
package deadline

import (
	"errors"
	"fmt"
	"sort"

	"leasing/internal/lease"
	"leasing/internal/workload"
)

const tightEps = 1e-9

// ErrNotIntervalModel is returned when a configuration's lengths are not
// powers of two.
var ErrNotIntervalModel = errors.New("deadline: configuration is not in the interval model")

// Instance is an OLD input: a lease configuration and a client stream
// sorted by arrival day.
type Instance struct {
	Cfg     *lease.Config
	Clients []workload.DeadlineClient
}

// NewInstance validates the configuration and stream.
func NewInstance(cfg *lease.Config, clients []workload.DeadlineClient) (*Instance, error) {
	if !cfg.IsIntervalModel() {
		return nil, ErrNotIntervalModel
	}
	for i, c := range clients {
		if c.D < 0 {
			return nil, fmt.Errorf("deadline: client %d has negative slack", i)
		}
		if i > 0 && c.T < clients[i-1].T {
			return nil, fmt.Errorf("deadline: client %d out of order", i)
		}
	}
	return &Instance{Cfg: cfg, Clients: clients}, nil
}

// Uniform reports whether all clients share the same slack (uniform OLD).
func (in *Instance) Uniform() bool {
	for i := 1; i < len(in.Clients); i++ {
		if in.Clients[i].D != in.Clients[0].D {
			return false
		}
	}
	return true
}

// DMax returns the largest slack.
func (in *Instance) DMax() int64 {
	var d int64
	for _, c := range in.Clients {
		if c.D > d {
			d = c.D
		}
	}
	return d
}

// Online is the deterministic primal-dual algorithm of Section 5.3. On a
// client (t, d) that does not meet the deadline day of an earlier
// positive-dual client, the client's dual variable is raised until some
// candidate lease (any aligned lease intersecting [t, t+d]) becomes tight;
// all tight leases covering day t are bought (Step 1, at least one exists
// by Proposition 5.1) and their types are mirrored at day t+d (Step 2), so
// later intersecting clients are pre-served.
type Online struct {
	cfg      *lease.Config
	store    *lease.Store
	contrib  map[lease.Lease]float64
	dual     float64
	posDuals []int64 // sorted deadline days of positive-dual clients
	lastT    int64
	started  bool
	skips    int
}

// NewOnline builds the algorithm over an interval-model configuration.
func NewOnline(cfg *lease.Config) (*Online, error) {
	if !cfg.IsIntervalModel() {
		return nil, ErrNotIntervalModel
	}
	return &Online{
		cfg:     cfg,
		store:   lease.NewStore(cfg),
		contrib: make(map[lease.Lease]float64),
	}, nil
}

// Arrive processes a client with window [t, t+d].
func (o *Online) Arrive(t, d int64) error {
	if d < 0 {
		return fmt.Errorf("deadline: negative slack %d", d)
	}
	if o.started && t < o.lastT {
		return fmt.Errorf("deadline: arrival at %d precedes %d", t, o.lastT)
	}
	o.started, o.lastT = true, t

	// Skip rule: a positive-dual earlier client whose deadline day falls in
	// our window has days t' and t'+d' covered, so we are already served.
	lo := sort.Search(len(o.posDuals), func(i int) bool { return o.posDuals[i] >= t })
	if lo < len(o.posDuals) && o.posDuals[lo] <= t+d {
		o.skips++
		return nil
	}

	cands := o.cfg.IntersectingAll(t, t+d)
	// Step 1: raise the dual until some candidate is tight.
	slack := o.cfg.Cost(cands[0].K) - o.contrib[cands[0]]
	for _, c := range cands[1:] {
		if s := o.cfg.Cost(c.K) - o.contrib[c]; s < slack {
			slack = s
		}
	}
	if slack > tightEps {
		o.dual += slack
		for _, c := range cands {
			o.contrib[c] += slack
		}
		// Record the deadline day for the skip rule.
		at := sort.Search(len(o.posDuals), func(i int) bool { return o.posDuals[i] >= t+d })
		o.posDuals = append(o.posDuals, 0)
		copy(o.posDuals[at+1:], o.posDuals[at:])
		o.posDuals[at] = t + d
	}
	// Buy every tight candidate covering day t; mirror each bought type at
	// day t+d.
	boughtType := make([]bool, o.cfg.K())
	anyBought := false
	for _, c := range cands {
		if o.contrib[c] < o.cfg.Cost(c.K)-tightEps {
			continue
		}
		if o.cfg.Covers(c, t) {
			o.store.Buy(c)
			boughtType[c.K] = true
			anyBought = true
		}
	}
	if !anyBought {
		// Proposition 5.1 guarantees a tight candidate in L_t; reaching this
		// point indicates a numerical failure we surface rather than hide.
		return fmt.Errorf("deadline: no tight lease covering day %d (window +%d)", t, d)
	}
	for k, b := range boughtType {
		if b {
			o.store.Buy(o.cfg.AlignedLease(k, t+d))
		}
	}
	return nil
}

// Run feeds the whole instance through the algorithm.
func (o *Online) Run(in *Instance) error {
	for _, c := range in.Clients {
		if err := o.Arrive(c.T, c.D); err != nil {
			return err
		}
	}
	return nil
}

// TotalCost returns the cost of all leases bought.
func (o *Online) TotalCost() float64 { return o.store.TotalCost() }

// DualTotal returns the dual objective (a lower bound on OPT by weak
// duality).
func (o *Online) DualTotal() float64 { return o.dual }

// Skips returns how many clients were served for free by the skip rule.
func (o *Online) Skips() int { return o.skips }

// Leases returns the bought leases.
func (o *Online) Leases() []lease.Lease { return o.store.Leases() }

// DualFeasible verifies no lease's accumulated contribution exceeds its
// cost.
func (o *Online) DualFeasible() bool {
	for l, v := range o.contrib {
		if v > o.cfg.Cost(l.K)+tightEps {
			return false
		}
	}
	return true
}

// ServedWithin reports whether the solution covers at least one day of the
// client window [t, t+d] — the OLD feasibility predicate.
func (o *Online) ServedWithin(t, d int64) bool {
	return servedWithin(o.cfg, o.store, t, d)
}

func servedWithin(cfg *lease.Config, store *lease.Store, t, d int64) bool {
	for day := t; day <= t+d; day++ {
		if store.Covers(day) {
			return true
		}
	}
	return false
}

// VerifyFeasible checks every client of the instance is served by sol.
func VerifyFeasible(in *Instance, sol []lease.Lease) error {
	st := lease.NewStore(in.Cfg)
	for _, l := range sol {
		st.Buy(l)
	}
	for i, c := range in.Clients {
		if !servedWithin(in.Cfg, st, c.T, c.D) {
			return fmt.Errorf("deadline: client %d (t=%d, d=%d) unserved", i, c.T, c.D)
		}
	}
	return nil
}
