package deadline

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"leasing/internal/lease"
	"leasing/internal/setcover"
	"leasing/internal/workload"
)

func oldConfig() *lease.Config {
	return lease.MustConfig(
		lease.Type{Length: 2, Cost: 1},
		lease.Type{Length: 16, Cost: 4},
	)
}

func TestNewInstanceValidation(t *testing.T) {
	cfg := oldConfig()
	if _, err := NewInstance(lease.MustConfig(lease.Type{Length: 3, Cost: 1}), nil); !errors.Is(err, ErrNotIntervalModel) {
		t.Errorf("non-interval accepted: %v", err)
	}
	if _, err := NewInstance(cfg, []workload.DeadlineClient{{T: 0, D: -1}}); err == nil {
		t.Error("negative slack accepted")
	}
	if _, err := NewInstance(cfg, []workload.DeadlineClient{{T: 5}, {T: 1}}); err == nil {
		t.Error("unsorted clients accepted")
	}
	in, err := NewInstance(cfg, []workload.DeadlineClient{{T: 0, D: 3}, {T: 2, D: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if in.DMax() != 3 || !in.Uniform() {
		t.Errorf("DMax=%d Uniform=%v", in.DMax(), in.Uniform())
	}
}

func TestOnlineBuysAtArrivalAndDeadline(t *testing.T) {
	// Single client (0, 5) with types (2,$1) and (16,$4): duals rise to 1
	// making every short lease intersecting [0,5] tight; the algorithm buys
	// the short lease covering day 0 and mirrors it at day 5: cost 2.
	alg, err := NewOnline(oldConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := alg.Arrive(0, 5); err != nil {
		t.Fatal(err)
	}
	if math.Abs(alg.TotalCost()-2) > 1e-9 {
		t.Errorf("cost = %v, want 2 (leases at 0 and at deadline 5)", alg.TotalCost())
	}
	if !alg.ServedWithin(0, 5) {
		t.Error("client unserved")
	}
	if !alg.DualFeasible() {
		t.Error("dual infeasible")
	}
	ls := alg.Leases()
	if len(ls) != 2 || ls[0] != (lease.Lease{K: 0, Start: 0}) || ls[1] != (lease.Lease{K: 0, Start: 4}) {
		t.Errorf("leases = %v, want short at 0 and short at 4 (covering day 5)", ls)
	}
}

func TestSkipRuleServesIntersectingClientFree(t *testing.T) {
	alg, err := NewOnline(oldConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := alg.Arrive(0, 6); err != nil { // deadline day 6
		t.Fatal(err)
	}
	costAfterFirst := alg.TotalCost()
	// Window [4, 9] contains day 6 → skip, no new cost.
	if err := alg.Arrive(4, 5); err != nil {
		t.Fatal(err)
	}
	if alg.TotalCost() != costAfterFirst {
		t.Errorf("intersecting client changed cost: %v -> %v", costAfterFirst, alg.TotalCost())
	}
	if alg.Skips() != 1 {
		t.Errorf("skips = %d, want 1", alg.Skips())
	}
	if !alg.ServedWithin(4, 5) {
		t.Error("skipped client actually unserved")
	}
}

func TestOnlineErrors(t *testing.T) {
	if _, err := NewOnline(lease.MustConfig(lease.Type{Length: 5, Cost: 1})); !errors.Is(err, ErrNotIntervalModel) {
		t.Errorf("error = %v, want ErrNotIntervalModel", err)
	}
	alg, _ := NewOnline(oldConfig())
	if err := alg.Arrive(0, -2); err == nil {
		t.Error("negative slack accepted")
	}
	if err := alg.Arrive(9, 0); err != nil {
		t.Fatal(err)
	}
	if err := alg.Arrive(3, 0); err == nil {
		t.Error("time regression accepted")
	}
}

func TestParkingPermitSpecialCase(t *testing.T) {
	// With all slacks zero OLD degenerates to the parking permit problem;
	// the mirror purchase at t+d coincides with the Step-1 lease, so the
	// cost matches the classical primal-dual behaviour (ratio <= 2K).
	cfg := oldConfig()
	rng := rand.New(rand.NewSource(17))
	var clients []workload.DeadlineClient
	for day := int64(0); day < 64; day++ {
		if rng.Float64() < 0.4 {
			clients = append(clients, workload.DeadlineClient{T: day, D: 0})
		}
	}
	in, err := NewInstance(cfg, clients)
	if err != nil {
		t.Fatal(err)
	}
	alg, _ := NewOnline(cfg)
	if err := alg.Run(in); err != nil {
		t.Fatal(err)
	}
	if err := VerifyFeasible(in, alg.Leases()); err != nil {
		t.Error(err)
	}
	opt, err := Optimal(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := alg.TotalCost() / opt; ratio > 2*float64(cfg.K())+1e-6 {
		t.Errorf("d=0 ratio %v exceeds 2K", ratio)
	}
}

func TestUniformOLDWithinTheoremBound(t *testing.T) {
	cfg := oldConfig()
	k := float64(cfg.K())
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		clients := workload.UniformDeadlineStream(rng, 96, 0.35, 6)
		if len(clients) == 0 {
			continue
		}
		in, err := NewInstance(cfg, clients)
		if err != nil {
			t.Fatal(err)
		}
		alg, _ := NewOnline(cfg)
		if err := alg.Run(in); err != nil {
			t.Fatal(err)
		}
		if err := VerifyFeasible(in, alg.Leases()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !alg.DualFeasible() {
			t.Fatalf("seed %d: dual infeasible", seed)
		}
		opt, err := Optimal(in, 0)
		if err != nil {
			t.Fatal(err)
		}
		if alg.DualTotal() > opt+1e-6 {
			t.Fatalf("seed %d: weak duality violated (dual %v > OPT %v)", seed, alg.DualTotal(), opt)
		}
		// Theorem 5.3: uniform OLD is 2K-competitive.
		if ratio := alg.TotalCost() / opt; ratio > 2*k+1e-6 {
			t.Errorf("seed %d: uniform ratio %v > 2K = %v", seed, ratio, 2*k)
		}
	}
}

func TestNonUniformOLDWithinTheoremBound(t *testing.T) {
	cfg := oldConfig()
	k := float64(cfg.K())
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		clients := workload.DeadlineStream(rng, 96, 0.35, 8)
		if len(clients) == 0 {
			continue
		}
		in, err := NewInstance(cfg, clients)
		if err != nil {
			t.Fatal(err)
		}
		alg, _ := NewOnline(cfg)
		if err := alg.Run(in); err != nil {
			t.Fatal(err)
		}
		if err := VerifyFeasible(in, alg.Leases()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		opt, err := Optimal(in, 0)
		if err != nil {
			t.Fatal(err)
		}
		bound := k + float64(in.DMax())/float64(cfg.LMin()) + 1 // Theorem 5.3 plus rounding slack
		if ratio := alg.TotalCost() / opt; ratio > bound+1e-6 {
			t.Errorf("seed %d: ratio %v > K + dmax/lmin = %v", seed, ratio, bound)
		}
		lb, err := LPLowerBound(in)
		if err != nil {
			t.Fatal(err)
		}
		if lb > opt+1e-6 {
			t.Errorf("seed %d: LP bound %v above OPT %v", seed, lb, opt)
		}
	}
}

func TestGreedySingleTypeMatchesILP(t *testing.T) {
	cfg := lease.MustConfig(lease.Type{Length: 4, Cost: 1})
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		clients := workload.DeadlineStream(rng, 64, 0.4, 10)
		in, err := NewInstance(cfg, clients)
		if err != nil {
			t.Fatal(err)
		}
		gCost, gSol, err := GreedySingleType(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyFeasible(in, gSol); err != nil {
			t.Fatalf("seed %d greedy infeasible: %v", seed, err)
		}
		opt, err := Optimal(in, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(gCost-opt) > 1e-6 {
			t.Errorf("seed %d: greedy %v != ILP %v", seed, gCost, opt)
		}
	}
	if _, _, err := GreedySingleType(&Instance{Cfg: oldConfig()}); err == nil {
		t.Error("greedy accepted K=2")
	}
}

func TestTightExampleRatioThetaDmaxOverLmin(t *testing.T) {
	in, err := TightInstance(2, 32, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := NewOnline(in.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := alg.Run(in); err != nil {
		t.Fatal(err)
	}
	if err := VerifyFeasible(in, alg.Leases()); err != nil {
		t.Fatal(err)
	}
	opt, err := Optimal(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt-1.01) > 1e-6 {
		t.Errorf("OPT = %v, want 1.01 (the long lease)", opt)
	}
	ratio := alg.TotalCost() / opt
	lowerTarget := 0.5 * float64(32) / float64(in.Cfg.LMin())
	if ratio < lowerTarget {
		t.Errorf("tight example ratio %v, want >= %v (Θ(dmax/lmin))", ratio, lowerTarget)
	}
	if _, err := TightInstance(4, 4, 0.1); err == nil {
		t.Error("dmax < 2*lmin accepted")
	}
}

func newSCLDFixture(t *testing.T, seed int64, horizon int64, dmax int64) *SCLDInstance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	fam, err := setcover.RandomFamily(rng, 8, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := oldConfig()
	costs := setcover.RandomCosts(rng, fam.M(), cfg, 0.5)
	var arrivals []SCLDArrival
	for day := int64(0); day < horizon; day++ {
		if rng.Float64() < 0.4 {
			d := int64(0)
			if dmax > 0 {
				d = rng.Int63n(dmax + 1)
			}
			arrivals = append(arrivals, SCLDArrival{T: day, Elem: rng.Intn(8), D: d})
		}
	}
	inst, err := NewSCLDInstance(fam, cfg, costs, arrivals)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestSCLDOnlineFeasibleAndAboveOPT(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		inst := newSCLDFixture(t, seed, 40, 6)
		alg, err := NewSCLDOnline(inst, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if err := alg.Run(); err != nil {
			t.Fatal(err)
		}
		if err := VerifySCLDFeasible(inst, alg.Bought()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		opt, proven, err := SCLDOptimal(inst, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !proven {
			t.Logf("seed %d: OPT not proven, skipping ratio check", seed)
			continue
		}
		if alg.TotalCost() < opt-1e-6 {
			t.Errorf("seed %d: online %v below OPT %v", seed, alg.TotalCost(), opt)
		}
	}
}

func TestSCLDValidation(t *testing.T) {
	fam, _ := setcover.NewFamily(3, [][]int{{0, 1}, {1, 2}})
	cfg := oldConfig()
	good := [][]float64{{1, 2}, {1, 2}}
	if _, err := NewSCLDInstance(fam, lease.MustConfig(lease.Type{Length: 3, Cost: 1}), [][]float64{{1}, {1}}, nil); err == nil {
		t.Error("non-interval accepted")
	}
	if _, err := NewSCLDInstance(fam, cfg, [][]float64{{1, 2}}, nil); err == nil {
		t.Error("cost row count accepted")
	}
	if _, err := NewSCLDInstance(fam, cfg, [][]float64{{1}, {1}}, nil); err == nil {
		t.Error("short cost row accepted")
	}
	if _, err := NewSCLDInstance(fam, cfg, good, []SCLDArrival{{T: 0, Elem: 9, D: 0}}); err == nil {
		t.Error("unknown element accepted")
	}
	if _, err := NewSCLDInstance(fam, cfg, good, []SCLDArrival{{T: 0, Elem: 0, D: -1}}); err == nil {
		t.Error("negative slack accepted")
	}
	if _, err := NewSCLDInstance(fam, cfg, good, []SCLDArrival{{T: 4, Elem: 0, D: 0}, {T: 1, Elem: 0, D: 0}}); err == nil {
		t.Error("unsorted arrivals accepted")
	}
	inst, err := NewSCLDInstance(fam, cfg, good, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSCLDOnline(inst, nil); err == nil {
		t.Error("nil rng accepted")
	}
	alg, _ := NewSCLDOnline(inst, rand.New(rand.NewSource(1)))
	if err := alg.Arrive(0, 9, 0); err == nil {
		t.Error("bad element accepted")
	}
	if err := alg.Arrive(0, 0, -1); err == nil {
		t.Error("negative slack accepted")
	}
	if err := alg.Arrive(5, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := alg.Arrive(1, 0, 0); err == nil {
		t.Error("time regression accepted")
	}
}

func TestSCLDZeroSlackIsSetCoverLeasing(t *testing.T) {
	// With all slacks zero SCLD is exactly SetCoverLeasing; verify the run
	// stays feasible and the fractional cost is tracked (Corollary 5.8's
	// time-independent algorithm).
	inst := newSCLDFixture(t, 42, 48, 0)
	alg, err := NewSCLDOnline(inst, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if err := alg.Run(); err != nil {
		t.Fatal(err)
	}
	if err := VerifySCLDFeasible(inst, alg.Bought()); err != nil {
		t.Fatal(err)
	}
	if len(inst.Arrivals) > 0 && alg.FractionalCost() <= 0 {
		t.Error("fractional cost not tracked")
	}
}
