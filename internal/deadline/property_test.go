package deadline

import (
	"testing"
	"testing/quick"

	"leasing/internal/lease"
	"leasing/internal/workload"
)

// clientsFromMask turns a bitmask into a deadline-client stream: bit b set
// means a client arrives on day 2b with slack (b mod 5).
func clientsFromMask(mask uint32) []workload.DeadlineClient {
	var out []workload.DeadlineClient
	for b := 0; b < 32; b++ {
		if mask&(1<<b) != 0 {
			out = append(out, workload.DeadlineClient{T: int64(2 * b), D: int64(b % 5)})
		}
	}
	return out
}

// Property (Theorem 5.3): for arbitrary client masks the OLD primal-dual
// is feasible, dual-feasible, weakly dominated by OPT, and within the
// K + dmax/lmin bound.
func TestQuickOLDInvariants(t *testing.T) {
	cfg := lease.MustConfig(
		lease.Type{Length: 2, Cost: 1},
		lease.Type{Length: 16, Cost: 4},
	)
	f := func(mask uint32) bool {
		clients := clientsFromMask(mask)
		if len(clients) == 0 {
			return true
		}
		in, err := NewInstance(cfg, clients)
		if err != nil {
			return false
		}
		alg, err := NewOnline(cfg)
		if err != nil {
			return false
		}
		if err := alg.Run(in); err != nil {
			return false
		}
		if err := VerifyFeasible(in, alg.Leases()); err != nil {
			return false
		}
		if !alg.DualFeasible() {
			return false
		}
		opt, err := Optimal(in, 0)
		if err != nil {
			return false
		}
		if alg.DualTotal() > opt+1e-6 {
			return false
		}
		bound := float64(cfg.K()) + float64(in.DMax())/float64(cfg.LMin()) + 1
		return alg.TotalCost() >= opt-1e-6 && alg.TotalCost() <= bound*opt+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: widening a client's window can only help — OPT with slack d+1
// everywhere is at most OPT with slack d.
func TestQuickSlackMonotone(t *testing.T) {
	cfg := lease.MustConfig(
		lease.Type{Length: 2, Cost: 1},
		lease.Type{Length: 16, Cost: 4},
	)
	f := func(mask uint16, d uint8) bool {
		slack := int64(d % 6)
		var tight, loose []workload.DeadlineClient
		for b := 0; b < 16; b++ {
			if mask&(1<<b) != 0 {
				tight = append(tight, workload.DeadlineClient{T: int64(3 * b), D: slack})
				loose = append(loose, workload.DeadlineClient{T: int64(3 * b), D: slack + 2})
			}
		}
		if len(tight) == 0 {
			return true
		}
		inTight, err := NewInstance(cfg, tight)
		if err != nil {
			return false
		}
		inLoose, err := NewInstance(cfg, loose)
		if err != nil {
			return false
		}
		optTight, err := Optimal(inTight, 0)
		if err != nil {
			return false
		}
		optLoose, err := Optimal(inLoose, 0)
		if err != nil {
			return false
		}
		return optLoose <= optTight+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
