package deadline

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"leasing/internal/ilp"
	"leasing/internal/lease"
	"leasing/internal/lp"
	"leasing/internal/setcover"
)

// SCLDArrival is one demand of SetCoverLeasingWithDeadlines: element Elem
// arrives at day T and must be covered by a set leased over some day of
// [T, T+D].
type SCLDArrival struct {
	T    int64
	Elem int
	D    int64
}

// SCLDInstance bundles a set system, lease configuration, per-set leasing
// costs, and a deadline demand stream (Section 5.5, Figure 5.4).
type SCLDInstance struct {
	Fam      *setcover.Family
	Cfg      *lease.Config
	Costs    [][]float64
	Arrivals []SCLDArrival
}

// NewSCLDInstance validates the input.
func NewSCLDInstance(fam *setcover.Family, cfg *lease.Config, costs [][]float64, arrivals []SCLDArrival) (*SCLDInstance, error) {
	if !cfg.IsIntervalModel() {
		return nil, ErrNotIntervalModel
	}
	if len(costs) != fam.M() {
		return nil, fmt.Errorf("deadline: %d cost rows for %d sets", len(costs), fam.M())
	}
	for s, row := range costs {
		if len(row) != cfg.K() {
			return nil, fmt.Errorf("deadline: cost row %d has %d entries, want %d", s, len(row), cfg.K())
		}
		for k, c := range row {
			if !(c > 0) {
				return nil, fmt.Errorf("deadline: cost[%d][%d] = %v, want > 0", s, k, c)
			}
		}
	}
	var lastT int64
	for i, a := range arrivals {
		if a.Elem < 0 || a.Elem >= fam.N() {
			return nil, fmt.Errorf("deadline: arrival %d element %d outside universe", i, a.Elem)
		}
		if a.D < 0 {
			return nil, fmt.Errorf("deadline: arrival %d negative slack", i)
		}
		if i > 0 && a.T < lastT {
			return nil, fmt.Errorf("deadline: arrival %d out of order", i)
		}
		lastT = a.T
	}
	return &SCLDInstance{Fam: fam, Cfg: cfg, Costs: costs, Arrivals: arrivals}, nil
}

// candidates returns the triples (S, k, start) with Elem in S whose windows
// intersect [t, t+d].
func (in *SCLDInstance) candidates(e int, t, d int64) []setcover.SetLease {
	var out []setcover.SetLease
	for _, s := range in.Fam.Containing(e) {
		for k := 0; k < in.Cfg.K(); k++ {
			for _, l := range in.Cfg.Intersecting(k, t, t+d) {
				out = append(out, setcover.SetLease{Set: s, K: k, Start: l.Start})
			}
		}
	}
	return out
}

// SCLDOnline is Algorithm 5: fractional multiplicative increments over the
// deadline-widened candidate list, randomized rounding with per-triple
// min-of-2⌈log2(l_max)⌉-uniform thresholds, and a cheapest-candidate
// fallback. Setting every slack to zero recovers the time-independent
// SetCoverLeasing algorithm of Corollary 5.8.
type SCLDOnline struct {
	inst      *SCLDInstance
	rng       *rand.Rand
	draws     int
	frac      map[setcover.SetLease]float64
	mu        map[setcover.SetLease]float64
	bought    map[setcover.SetLease]struct{}
	total     float64
	fracCost  float64
	fallbacks int
	lastT     int64
	started   bool
}

// NewSCLDOnline builds the algorithm; rng supplies threshold draws.
func NewSCLDOnline(inst *SCLDInstance, rng *rand.Rand) (*SCLDOnline, error) {
	if rng == nil {
		return nil, errors.New("deadline: nil rng")
	}
	draws := 2 * int(math.Ceil(math.Log2(float64(inst.Cfg.LMax()+1))))
	if draws < 1 {
		draws = 1
	}
	return &SCLDOnline{
		inst:   inst,
		rng:    rng,
		draws:  draws,
		frac:   make(map[setcover.SetLease]float64),
		mu:     make(map[setcover.SetLease]float64),
		bought: make(map[setcover.SetLease]struct{}),
	}, nil
}

func (o *SCLDOnline) threshold(sl setcover.SetLease) float64 {
	if mu, ok := o.mu[sl]; ok {
		return mu
	}
	mu := 1.0
	for i := 0; i < o.draws; i++ {
		if u := o.rng.Float64(); u < mu {
			mu = u
		}
	}
	o.mu[sl] = mu
	return mu
}

// Arrive processes the demand (element e, window [t, t+d]).
func (o *SCLDOnline) Arrive(t int64, e int, d int64) error {
	if o.started && t < o.lastT {
		return fmt.Errorf("deadline: arrival at %d precedes %d", t, o.lastT)
	}
	o.started, o.lastT = true, t
	if e < 0 || e >= o.inst.Fam.N() {
		return fmt.Errorf("deadline: element %d outside universe", e)
	}
	if d < 0 {
		return fmt.Errorf("deadline: negative slack %d", d)
	}
	cands := o.inst.candidates(e, t, d)
	if len(cands) == 0 {
		return fmt.Errorf("deadline: element %d in no set", e)
	}

	sum := 0.0
	for _, c := range cands {
		sum += o.frac[c]
	}
	for sum < 1 {
		sum = 0
		for _, c := range cands {
			cost := o.inst.Costs[c.Set][c.K]
			f := o.frac[c]
			nf := f*(1+1/cost) + 1/(float64(len(cands))*cost)
			o.frac[c] = nf
			o.fracCost += (nf - f) * cost
			sum += nf
		}
	}

	covered := false
	for _, c := range cands {
		if _, ok := o.bought[c]; ok {
			covered = true
			continue
		}
		if o.frac[c] > o.threshold(c) {
			o.bought[c] = struct{}{}
			o.total += o.inst.Costs[c.Set][c.K]
			covered = true
		}
	}
	if covered {
		return nil
	}
	o.fallbacks++
	best := cands[0]
	bestCost := o.inst.Costs[best.Set][best.K]
	for _, c := range cands[1:] {
		if cc := o.inst.Costs[c.Set][c.K]; cc < bestCost {
			best, bestCost = c, cc
		}
	}
	o.bought[best] = struct{}{}
	o.total += bestCost
	return nil
}

// Run feeds the whole instance through the algorithm.
func (o *SCLDOnline) Run() error {
	for _, a := range o.inst.Arrivals {
		if err := o.Arrive(a.T, a.Elem, a.D); err != nil {
			return err
		}
	}
	return nil
}

// TotalCost returns the integral solution cost.
func (o *SCLDOnline) TotalCost() float64 { return o.total }

// FractionalCost returns the accumulated fractional cost (Lemma 5.5).
func (o *SCLDOnline) FractionalCost() float64 { return o.fracCost }

// Fallbacks returns how often the cheapest-candidate fallback fired.
func (o *SCLDOnline) Fallbacks() int { return o.fallbacks }

// Bought returns the leased triples in canonical (set, type, start)
// order, so snapshots built from it are identical across runs.
func (o *SCLDOnline) Bought() []setcover.SetLease {
	out := make([]setcover.SetLease, 0, len(o.bought))
	for sl := range o.bought {
		out = append(out, sl)
	}
	setcover.SortSetLeases(out)
	return out
}

// VerifySCLDFeasible checks every arrival has a bought triple of a
// containing set whose window intersects the arrival's window.
func VerifySCLDFeasible(inst *SCLDInstance, bought []setcover.SetLease) error {
	owned := make(map[setcover.SetLease]struct{}, len(bought))
	for _, sl := range bought {
		owned[sl] = struct{}{}
	}
	for i, a := range inst.Arrivals {
		ok := false
		for _, c := range inst.candidates(a.Elem, a.T, a.D) {
			if _, got := owned[c]; got {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("deadline: arrival %d (elem %d, window [%d,%d]) unserved", i, a.Elem, a.T, a.T+a.D)
		}
	}
	return nil
}

// SCLDLPLowerBound returns the LP-relaxation lower bound on the SCLD
// optimum, used for instances too large for exact branch and bound (the
// time-independence experiment of Corollary 5.8 grows the horizon far past
// what exact search handles).
func SCLDLPLowerBound(inst *SCLDInstance) (float64, error) {
	if len(inst.Arrivals) == 0 {
		return 0, nil
	}
	candIdx := map[setcover.SetLease]int{}
	var cands []setcover.SetLease
	for _, a := range inst.Arrivals {
		for _, c := range inst.candidates(a.Elem, a.T, a.D) {
			if _, ok := candIdx[c]; !ok {
				candIdx[c] = len(cands)
				cands = append(cands, c)
			}
		}
	}
	costs := make([]float64, len(cands))
	for i, c := range cands {
		costs[i] = inst.Costs[c.Set][c.K]
	}
	prob := lp.NewMinimize(costs)
	for _, a := range inst.Arrivals {
		row := map[int]float64{}
		for _, c := range inst.candidates(a.Elem, a.T, a.D) {
			row[candIdx[c]] = 1
		}
		if err := prob.Add(row, lp.GE, 1); err != nil {
			return 0, err
		}
	}
	sol, err := prob.Solve()
	if err != nil {
		return 0, err
	}
	if sol.Status != lp.Optimal {
		return 0, fmt.Errorf("deadline: SCLD LP status %v", sol.Status)
	}
	return sol.Objective, nil
}

// SCLDOptimal computes the exact offline optimum of an SCLD instance by
// branch and bound. nodeLimit <= 0 uses the solver default.
func SCLDOptimal(inst *SCLDInstance, nodeLimit int) (float64, bool, error) {
	if len(inst.Arrivals) == 0 {
		return 0, true, nil
	}
	candIdx := map[setcover.SetLease]int{}
	var cands []setcover.SetLease
	for _, a := range inst.Arrivals {
		for _, c := range inst.candidates(a.Elem, a.T, a.D) {
			if _, ok := candIdx[c]; !ok {
				candIdx[c] = len(cands)
				cands = append(cands, c)
			}
		}
	}
	costs := make([]float64, len(cands))
	for i, c := range cands {
		costs[i] = inst.Costs[c.Set][c.K]
	}
	prob := ilp.NewBinaryMinimize(costs)
	for _, a := range inst.Arrivals {
		row := map[int]float64{}
		for _, c := range inst.candidates(a.Elem, a.T, a.D) {
			row[candIdx[c]] = 1
		}
		if err := prob.Add(row, lp.GE, 1); err != nil {
			return 0, false, err
		}
	}
	res, err := prob.Solve(ilp.Options{NodeLimit: nodeLimit})
	if err != nil {
		return 0, false, fmt.Errorf("deadline: SCLD ILP: %w", err)
	}
	return res.Objective, res.Proven, nil
}
