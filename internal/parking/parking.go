// Package parking implements the Parking Permit Problem of Meyerson (FOCS
// 2005) as presented in Chapter 2 of the thesis: the deterministic O(K)
// primal-dual algorithm (Algorithm 1, Theorem 2.7), the randomized
// O(log K) fractional-plus-rounding algorithm (Algorithm 2), the exact
// offline optimum (a laminar dynamic program over the nested interval
// hierarchy, plus an ILP cross-check), and both lower-bound constructions
// (the adaptive Ω(K) adversary of Theorem 2.8 and the recursive Ω(log K)
// distribution of Theorem 2.9).
//
// All online algorithms operate in the interval model (Definition 2.5):
// lease lengths are powers of two and leases start at multiples of their
// length, so each day is covered by exactly K candidate leases.
package parking

import (
	"errors"
	"fmt"
	"math/rand"

	"leasing/internal/lease"
)

// ErrNotIntervalModel is returned by constructors when the configuration's
// lengths are not all powers of two.
var ErrNotIntervalModel = errors.New("parking: configuration is not in the interval model")

// ErrTimeRegression is returned when demands arrive out of order.
var ErrTimeRegression = errors.New("parking: arrival time precedes an earlier arrival")

const tightEps = 1e-9

// Algorithm is the interface shared by the deterministic and randomized
// online algorithms; the adversary drivers operate against it.
type Algorithm interface {
	// Arrive processes a demand (a client needing a permit) on day t.
	// Arrival days must be non-decreasing.
	Arrive(t int64) error
	// Covers reports whether the current solution covers day t.
	Covers(t int64) bool
	// TotalCost returns the cost of all leases bought so far.
	TotalCost() float64
	// Leases returns the leases bought so far.
	Leases() []lease.Lease
}

// Deterministic is the primal-dual Algorithm 1: when a client arrives, its
// dual variable is raised until some candidate's dual constraint becomes
// tight, and every tight candidate is bought. It is K-competitive in the
// interval model (Theorem 2.7).
type Deterministic struct {
	cfg     *lease.Config
	store   *lease.Store
	contrib map[lease.Lease]float64
	dual    float64
	lastT   int64
	started bool
}

var _ Algorithm = (*Deterministic)(nil)

// NewDeterministic builds the deterministic algorithm over an
// interval-model configuration.
func NewDeterministic(cfg *lease.Config) (*Deterministic, error) {
	if !cfg.IsIntervalModel() {
		return nil, ErrNotIntervalModel
	}
	return &Deterministic{
		cfg:     cfg,
		store:   lease.NewStore(cfg),
		contrib: make(map[lease.Lease]float64),
	}, nil
}

// Arrive implements Algorithm.
func (d *Deterministic) Arrive(t int64) error {
	if d.started && t < d.lastT {
		return fmt.Errorf("%w: %d after %d", ErrTimeRegression, t, d.lastT)
	}
	d.started, d.lastT = true, t

	cands := d.cfg.Covering(t)
	// Slack of the least-slack candidate: the amount the client's dual
	// variable y_t can rise before a constraint becomes tight.
	slack := d.cfg.Cost(cands[0].K) - d.contrib[cands[0]]
	for _, c := range cands[1:] {
		if s := d.cfg.Cost(c.K) - d.contrib[c]; s < slack {
			slack = s
		}
	}
	if slack > tightEps {
		d.dual += slack
		for _, c := range cands {
			d.contrib[c] += slack
		}
	}
	// Buy every candidate whose constraint is now tight. If slack was ~0 a
	// tight candidate was already bought by an earlier client, so the day is
	// covered either way.
	for _, c := range cands {
		if d.contrib[c] >= d.cfg.Cost(c.K)-tightEps {
			d.store.Buy(c)
		}
	}
	return nil
}

// Covers implements Algorithm.
func (d *Deterministic) Covers(t int64) bool { return d.store.Covers(t) }

// TotalCost implements Algorithm.
func (d *Deterministic) TotalCost() float64 { return d.store.TotalCost() }

// Leases implements Algorithm.
func (d *Deterministic) Leases() []lease.Lease { return d.store.Leases() }

// BoughtSince exposes the store's purchase journal for the streaming
// adapter's O(new) decision diff.
func (d *Deterministic) BoughtSince(n int) []lease.Lease { return d.store.BoughtSince(n) }

// DualTotal returns the accumulated dual objective (the sum of all client
// dual variables); by weak duality it lower-bounds the offline optimum, and
// the analysis of Theorem 2.7 gives TotalCost <= K * DualTotal.
func (d *Deterministic) DualTotal() float64 { return d.dual }

// DualFeasible verifies no dual constraint is violated (every lease's
// accumulated contribution is at most its cost, modulo epsilon). Used by
// tests.
func (d *Deterministic) DualFeasible() bool {
	for l, v := range d.contrib {
		if v > d.cfg.Cost(l.K)+tightEps {
			return false
		}
	}
	return true
}

// Randomized is Algorithm 2: a monotone fractional solution maintained by
// multiplicative updates, rounded online with a single uniform threshold
// tau. Its expected competitive ratio is O(log K).
type Randomized struct {
	cfg      *lease.Config
	store    *lease.Store
	frac     map[lease.Lease]float64
	tau      float64
	fracCost float64
	lastT    int64
	started  bool
}

var _ Algorithm = (*Randomized)(nil)

// NewRandomized builds the randomized algorithm; rng supplies the single
// threshold draw. rng must be non-nil.
func NewRandomized(cfg *lease.Config, rng *rand.Rand) (*Randomized, error) {
	if !cfg.IsIntervalModel() {
		return nil, ErrNotIntervalModel
	}
	if rng == nil {
		return nil, errors.New("parking: nil rng")
	}
	return &Randomized{
		cfg:   cfg,
		store: lease.NewStore(cfg),
		frac:  make(map[lease.Lease]float64),
		tau:   1 - rng.Float64(), // uniform in (0, 1]
	}, nil
}

// Arrive implements Algorithm.
func (r *Randomized) Arrive(t int64) error {
	if r.started && t < r.lastT {
		return fmt.Errorf("%w: %d after %d", ErrTimeRegression, t, r.lastT)
	}
	r.started, r.lastT = true, t

	cands := r.cfg.Covering(t) // index == type, shortest first
	k := len(cands)

	// Fractional phase: raise candidate fractions until they sum to >= 1.
	sum := 0.0
	for _, c := range cands {
		sum += r.frac[c]
	}
	for sum < 1 {
		sum = 0
		for _, c := range cands {
			cost := r.cfg.Cost(c.K)
			f := r.frac[c]
			nf := f*(1+1/cost) + 1/(float64(k)*cost)
			r.frac[c] = nf
			r.fracCost += (nf - f) * cost
			sum += nf
		}
	}

	// Rounding phase: buy the unique type k* whose fraction suffix brackets
	// tau: sum_{i>k*} f_i < tau <= sum_{i>=k*} f_i. Suffixes run from the
	// longest type down, so suffix[0] = sum >= 1 >= tau guarantees existence.
	suffix := 0.0
	for i := k - 1; i >= 0; i-- {
		next := suffix + r.frac[cands[i]]
		if suffix < r.tau && r.tau <= next {
			r.store.Buy(cands[i])
			return nil
		}
		suffix = next
	}
	// Floating-point slack can leave tau marginally above the total; the
	// shortest candidate is the conservative fallback and preserves both
	// feasibility and the expected-cost analysis (probability O(eps)).
	r.store.Buy(cands[0])
	return nil
}

// Covers implements Algorithm.
func (r *Randomized) Covers(t int64) bool { return r.store.Covers(t) }

// TotalCost implements Algorithm.
func (r *Randomized) TotalCost() float64 { return r.store.TotalCost() }

// Leases implements Algorithm.
func (r *Randomized) Leases() []lease.Lease { return r.store.Leases() }

// BoughtSince exposes the store's purchase journal for the streaming
// adapter's O(new) decision diff.
func (r *Randomized) BoughtSince(n int) []lease.Lease { return r.store.BoughtSince(n) }

// FractionalCost returns the cost of the fractional solution, the quantity
// the first half of the analysis bounds by O(log K) * OPT.
func (r *Randomized) FractionalCost() float64 { return r.fracCost }

// Run feeds every demand day of days (which must be sorted ascending) into
// alg and returns its final cost.
func Run(alg Algorithm, days []int64) (float64, error) {
	for _, t := range days {
		if err := alg.Arrive(t); err != nil {
			return 0, err
		}
	}
	return alg.TotalCost(), nil
}

// CoversAllAfterRun verifies that alg's final solution covers every demand
// day — the feasibility invariant of both algorithms.
func CoversAllAfterRun(alg Algorithm, days []int64) bool {
	for _, t := range days {
		if !alg.Covers(t) {
			return false
		}
	}
	return true
}
