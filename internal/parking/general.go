package parking

import (
	"fmt"

	"leasing/internal/lease"
)

// GeneralAdapter applies Lemma 2.6 online: it runs an interval-model
// algorithm over the rounded configuration and mirrors every interval
// lease it buys as two consecutive leases of the original (arbitrary
// length) configuration, whose combined span covers the rounded window.
// The adapter is 2c-competitive against the rounded optimum and hence
// 4c-competitive against the general optimum when the wrapped algorithm
// is c-competitive — the full statement of the lemma, working online.
type GeneralAdapter struct {
	orig    *lease.Config
	rounded *lease.Config
	toOrig  map[int]int // rounded type -> cheapest original type mapped to it
	inner   Algorithm
	store   *lease.Store
	seen    map[lease.Lease]bool
}

// NewGeneralAdapter wraps build (a constructor of an interval-model
// algorithm, e.g. NewDeterministic or a randomized closure) for use with a
// general configuration whose lengths need not be powers of two.
func NewGeneralAdapter(orig *lease.Config, build func(cfg *lease.Config) (Algorithm, error)) (*GeneralAdapter, error) {
	rounded := orig.RoundToIntervalModel()
	inner, err := build(rounded)
	if err != nil {
		return nil, fmt.Errorf("parking: build inner algorithm: %w", err)
	}
	m := orig.TypeMapToRounded(rounded)
	toOrig := make(map[int]int, len(m))
	for origK, rk := range m {
		if rk < 0 {
			continue
		}
		if cur, ok := toOrig[rk]; !ok || orig.Cost(origK) < orig.Cost(cur) {
			toOrig[rk] = origK
		}
	}
	return &GeneralAdapter{
		orig:    orig,
		rounded: rounded,
		toOrig:  toOrig,
		inner:   inner,
		store:   lease.NewStore(orig),
		seen:    make(map[lease.Lease]bool),
	}, nil
}

var _ Algorithm = (*GeneralAdapter)(nil)

// Arrive implements Algorithm: the demand is forwarded to the inner
// interval-model algorithm and its new purchases are expanded to pairs of
// original leases.
func (a *GeneralAdapter) Arrive(t int64) error {
	if err := a.inner.Arrive(t); err != nil {
		return err
	}
	for _, il := range a.inner.Leases() {
		if a.seen[il] {
			continue
		}
		a.seen[il] = true
		ok, exists := a.toOrig[il.K]
		if !exists {
			return fmt.Errorf("parking: rounded type %d has no original mapping", il.K)
		}
		a.store.Buy(lease.Lease{K: ok, Start: il.Start})
		a.store.Buy(lease.Lease{K: ok, Start: il.Start + a.orig.Length(ok)})
	}
	if !a.store.Covers(t) {
		return fmt.Errorf("parking: adapter left day %d uncovered", t)
	}
	return nil
}

// Covers implements Algorithm over the general-model store.
func (a *GeneralAdapter) Covers(t int64) bool { return a.store.Covers(t) }

// TotalCost implements Algorithm (cost of the general-model leases).
func (a *GeneralAdapter) TotalCost() float64 { return a.store.TotalCost() }

// Leases implements Algorithm.
func (a *GeneralAdapter) Leases() []lease.Lease { return a.store.Leases() }

// BoughtSince exposes the store's purchase journal for the streaming
// adapter's O(new) decision diff.
func (a *GeneralAdapter) BoughtSince(n int) []lease.Lease { return a.store.BoughtSince(n) }

// RoundedConfig exposes the rounded configuration (for tests and
// diagnostics).
func (a *GeneralAdapter) RoundedConfig() *lease.Config { return a.rounded }
