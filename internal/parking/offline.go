package parking

import (
	"errors"
	"fmt"
	"sort"

	"leasing/internal/ilp"
	"leasing/internal/lease"
	"leasing/internal/lp"
)

// Optimal computes the exact offline optimum for covering the given demand
// days in the interval model, together with an optimal lease set.
//
// It exploits the laminar structure of the interval model: every type-k
// window is partitioned exactly by type-(k-1) windows (lengths are powers
// of two), so the optimal cover of a window either buys the window's own
// lease or solves each demand-carrying child window independently. The
// recursion is exact and runs in O(K * |days|) time.
func Optimal(cfg *lease.Config, days []int64) (float64, []lease.Lease, error) {
	if !cfg.IsIntervalModel() {
		return 0, nil, ErrNotIntervalModel
	}
	if len(days) == 0 {
		return 0, nil, nil
	}
	ds := make([]int64, len(days))
	copy(ds, days)
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	// Deduplicate: multiple clients on a day need one cover.
	uniq := ds[:1]
	for _, d := range ds[1:] {
		if d != uniq[len(uniq)-1] {
			uniq = append(uniq, d)
		}
	}
	ds = uniq

	topK := cfg.K() - 1
	var total float64
	var sol []lease.Lease
	// Partition days into top-level windows and solve each.
	for lo := 0; lo < len(ds); {
		winStart := cfg.AlignedStart(topK, ds[lo])
		winEnd := winStart + cfg.Length(topK)
		hi := sort.Search(len(ds), func(i int) bool { return ds[i] >= winEnd })
		cost, leases := optimalWindow(cfg, ds[lo:hi], topK, winStart)
		total += cost
		sol = append(sol, leases...)
		lo = hi
	}
	return total, sol, nil
}

// optimalWindow solves the cover of days (all inside the type-k window at
// winStart) using lease types 0..k.
func optimalWindow(cfg *lease.Config, days []int64, k int, winStart int64) (float64, []lease.Lease) {
	if len(days) == 0 {
		return 0, nil
	}
	self := lease.Lease{K: k, Start: winStart}
	if k == 0 {
		return cfg.Cost(0), []lease.Lease{self}
	}
	childLen := cfg.Length(k - 1)
	var splitCost float64
	var splitSol []lease.Lease
	for lo := 0; lo < len(days); {
		childStart := cfg.AlignedStart(k-1, days[lo])
		childEnd := childStart + childLen
		hi := sort.Search(len(days), func(i int) bool { return days[i] >= childEnd })
		c, s := optimalWindow(cfg, days[lo:hi], k-1, childStart)
		splitCost += c
		splitSol = append(splitSol, s...)
		lo = hi
		if splitCost >= cfg.Cost(k) {
			// Early exit: children already cost at least the window lease.
			return cfg.Cost(k), []lease.Lease{self}
		}
	}
	if cfg.Cost(k) < splitCost {
		return cfg.Cost(k), []lease.Lease{self}
	}
	return splitCost, splitSol
}

// OptimalILP computes the offline optimum via branch and bound, either over
// aligned interval-model candidates (aligned = true; must match Optimal) or
// over the general model where a lease may start on any demand day
// (aligned = false; an optimal general solution always exists with such
// starts, by sliding each lease right to the first demand day it covers).
func OptimalILP(cfg *lease.Config, days []int64, aligned bool) (float64, error) {
	if len(days) == 0 {
		return 0, nil
	}
	ds := make([]int64, len(days))
	copy(ds, days)
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })

	type cand struct {
		l lease.Lease
		c float64
	}
	seen := map[lease.Lease]int{}
	var cands []cand
	addCand := func(l lease.Lease) {
		if _, ok := seen[l]; ok {
			return
		}
		seen[l] = len(cands)
		cands = append(cands, cand{l: l, c: cfg.Cost(l.K)})
	}
	for _, t := range ds {
		for k := 0; k < cfg.K(); k++ {
			if aligned {
				addCand(cfg.AlignedLease(k, t))
			} else {
				addCand(lease.Lease{K: k, Start: t})
			}
		}
	}

	costs := make([]float64, len(cands))
	for i, c := range cands {
		costs[i] = c.c
	}
	prob := ilp.NewBinaryMinimize(costs)
	for _, t := range ds {
		row := map[int]float64{}
		for i, c := range cands {
			if cfg.Covers(c.l, t) {
				row[i] = 1
			}
		}
		if len(row) == 0 {
			return 0, fmt.Errorf("parking: day %d has no covering candidate", t)
		}
		if err := prob.Add(row, lp.GE, 1); err != nil {
			return 0, err
		}
	}
	// Greedy incumbent: cover each day with the cheapest candidate.
	inc := make([]float64, len(cands))
	for _, t := range ds {
		best, bestCost := -1, 0.0
		for i, c := range cands {
			if cfg.Covers(c.l, t) && (best < 0 || c.c < bestCost) {
				best, bestCost = i, c.c
			}
		}
		inc[best] = 1
	}
	res, err := prob.Solve(ilp.Options{Incumbent: inc})
	if err != nil {
		return 0, fmt.Errorf("parking: offline ILP: %w", err)
	}
	if !res.Proven {
		return res.Objective, errors.New("parking: offline ILP hit node limit (instance too large)")
	}
	return res.Objective, nil
}
