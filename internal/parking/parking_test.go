package parking

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"leasing/internal/lease"
)

func twoType() *lease.Config {
	return lease.MustConfig(
		lease.Type{Length: 1, Cost: 1},
		lease.Type{Length: 4, Cost: 3},
	)
}

func TestDeterministicHandComputed(t *testing.T) {
	// Days 0,1,2 with types (1,$1) and (4,$3): the primal-dual algorithm
	// buys day leases on days 0 and 1; on day 2 both the day lease and the
	// long lease become tight simultaneously and both are bought. Total 6.
	alg, err := NewDeterministic(twoType())
	if err != nil {
		t.Fatal(err)
	}
	days := []int64{0, 1, 2}
	cost, err := Run(alg, days)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost-6) > 1e-9 {
		t.Errorf("cost = %v, want 6", cost)
	}
	wantLeases := []lease.Lease{{K: 0, Start: 0}, {K: 0, Start: 1}, {K: 0, Start: 2}, {K: 1, Start: 0}}
	got := alg.Leases()
	if len(got) != len(wantLeases) {
		t.Fatalf("leases = %v, want %v", got, wantLeases)
	}
	for i := range wantLeases {
		if got[i] != wantLeases[i] {
			t.Fatalf("leases = %v, want %v", got, wantLeases)
		}
	}
	if !CoversAllAfterRun(alg, days) {
		t.Error("solution does not cover all demand days")
	}
	if !alg.DualFeasible() {
		t.Error("dual constraints violated")
	}
	if math.Abs(alg.DualTotal()-3) > 1e-9 {
		t.Errorf("dual total = %v, want 3 (y=1 each day)", alg.DualTotal())
	}
}

func TestDeterministicAlreadyCoveredDayIsFree(t *testing.T) {
	alg, _ := NewDeterministic(twoType())
	if _, err := Run(alg, []int64{0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if alg.TotalCost() != 1 {
		t.Errorf("cost = %v, want 1 (repeats free)", alg.TotalCost())
	}
}

func TestDeterministicTimeRegression(t *testing.T) {
	alg, _ := NewDeterministic(twoType())
	if err := alg.Arrive(5); err != nil {
		t.Fatal(err)
	}
	if err := alg.Arrive(3); !errors.Is(err, ErrTimeRegression) {
		t.Errorf("error = %v, want ErrTimeRegression", err)
	}
}

func TestConstructorsRejectNonIntervalModel(t *testing.T) {
	bad := lease.MustConfig(lease.Type{Length: 3, Cost: 1})
	if _, err := NewDeterministic(bad); !errors.Is(err, ErrNotIntervalModel) {
		t.Errorf("NewDeterministic error = %v", err)
	}
	if _, err := NewRandomized(bad, rand.New(rand.NewSource(1))); !errors.Is(err, ErrNotIntervalModel) {
		t.Errorf("NewRandomized error = %v", err)
	}
	if _, err := NewRandomized(twoType(), nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestOptimalHandComputed(t *testing.T) {
	cfg := twoType()
	opt, sol, err := Optimal(cfg, []int64{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt-3) > 1e-9 {
		t.Errorf("OPT = %v, want 3", opt)
	}
	if !cfg.CoversAll(sol, []int64{0, 1, 2}) {
		t.Errorf("optimal solution %v infeasible", sol)
	}
	if math.Abs(cfg.SolutionCost(sol)-opt) > 1e-9 {
		t.Errorf("solution cost %v != reported opt %v", cfg.SolutionCost(sol), opt)
	}
	// Sparse days prefer day leases: days {0, 100} → two day leases, cost 2.
	opt2, _, err := Optimal(cfg, []int64{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt2-2) > 1e-9 {
		t.Errorf("OPT sparse = %v, want 2", opt2)
	}
	// Empty instance.
	opt3, sol3, err := Optimal(cfg, nil)
	if err != nil || opt3 != 0 || sol3 != nil {
		t.Errorf("empty OPT = %v, %v, %v", opt3, sol3, err)
	}
	// Duplicates collapse.
	opt4, _, err := Optimal(cfg, []int64{5, 5, 5})
	if err != nil || math.Abs(opt4-1) > 1e-9 {
		t.Errorf("duplicate-day OPT = %v, want 1", opt4)
	}
	if _, _, err := Optimal(lease.MustConfig(lease.Type{Length: 3, Cost: 1}), []int64{0}); !errors.Is(err, ErrNotIntervalModel) {
		t.Errorf("Optimal on non-interval config error = %v", err)
	}
}

func TestOptimalMatchesILP(t *testing.T) {
	cfg := lease.MustConfig(
		lease.Type{Length: 1, Cost: 1},
		lease.Type{Length: 4, Cost: 2.5},
		lease.Type{Length: 16, Cost: 6},
	)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		nDays := 1 + rng.Intn(9)
		daySet := map[int64]bool{}
		for len(daySet) < nDays {
			daySet[int64(rng.Intn(48))] = true
		}
		days := make([]int64, 0, nDays)
		for d := range daySet {
			days = append(days, d)
		}
		dpOpt, sol, err := Optimal(cfg, days)
		if err != nil {
			t.Fatal(err)
		}
		if !cfg.CoversAll(sol, days) {
			t.Fatalf("trial %d: DP solution infeasible", trial)
		}
		ilpOpt, err := OptimalILP(cfg, days, true)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(dpOpt-ilpOpt) > 1e-6 {
			t.Fatalf("trial %d: DP %v != ILP %v (days %v)", trial, dpOpt, ilpOpt, days)
		}
		// The general model can only be cheaper (more candidate starts).
		genOpt, err := OptimalILP(cfg, days, false)
		if err != nil {
			t.Fatalf("trial %d general: %v", trial, err)
		}
		if genOpt > dpOpt+1e-6 {
			t.Fatalf("trial %d: general OPT %v > interval OPT %v", trial, genOpt, dpOpt)
		}
	}
}

// Property (Theorem 2.7): in the interval model the deterministic algorithm
// is K-competitive, its dual is feasible, and weak duality holds.
func TestDeterministicCompetitiveRatioAtMostK(t *testing.T) {
	cfg := lease.PowerConfig(4, 4, 0.6)
	k := float64(cfg.K())
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		var days []int64
		for d := int64(0); d < 200; d++ {
			if rng.Float64() < 0.25 {
				days = append(days, d)
			}
		}
		if len(days) == 0 {
			continue
		}
		alg, err := NewDeterministic(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cost, err := Run(alg, days)
		if err != nil {
			t.Fatal(err)
		}
		if !CoversAllAfterRun(alg, days) {
			t.Fatal("infeasible online solution")
		}
		if !alg.DualFeasible() {
			t.Fatal("dual infeasible")
		}
		opt, _, err := Optimal(cfg, days)
		if err != nil {
			t.Fatal(err)
		}
		if alg.DualTotal() > opt+1e-6 {
			t.Fatalf("weak duality violated: dual %v > OPT %v", alg.DualTotal(), opt)
		}
		if cost > k*opt+1e-6 {
			t.Fatalf("ratio %v > K = %v", cost/opt, k)
		}
		if cost < opt-1e-6 {
			t.Fatalf("online %v below OPT %v", cost, opt)
		}
	}
}

func TestRandomizedFeasibleAndAboveOPT(t *testing.T) {
	cfg := lease.PowerConfig(5, 4, 0.5)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		var days []int64
		for d := int64(0); d < 300; d++ {
			if rng.Float64() < 0.2 {
				days = append(days, d)
			}
		}
		if len(days) == 0 {
			continue
		}
		alg, err := NewRandomized(cfg, rand.New(rand.NewSource(int64(trial))))
		if err != nil {
			t.Fatal(err)
		}
		cost, err := Run(alg, days)
		if err != nil {
			t.Fatal(err)
		}
		if !CoversAllAfterRun(alg, days) {
			t.Fatal("randomized solution infeasible")
		}
		opt, _, err := Optimal(cfg, days)
		if err != nil {
			t.Fatal(err)
		}
		if cost < opt-1e-6 {
			t.Fatalf("online %v below OPT %v", cost, opt)
		}
		if alg.FractionalCost() <= 0 {
			t.Error("fractional cost not tracked")
		}
	}
}

func TestRandomizedTimeRegression(t *testing.T) {
	alg, _ := NewRandomized(twoType(), rand.New(rand.NewSource(1)))
	if err := alg.Arrive(4); err != nil {
		t.Fatal(err)
	}
	if err := alg.Arrive(2); !errors.Is(err, ErrTimeRegression) {
		t.Errorf("error = %v, want ErrTimeRegression", err)
	}
}

func TestAdversaryForcesOmegaK(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		cfg := lease.MeyersonLowerBoundConfig(k)
		alg, err := NewDeterministic(cfg)
		if err != nil {
			t.Fatal(err)
		}
		days, err := RunAdversary(cfg, alg, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if len(days) == 0 {
			t.Fatal("adversary issued no demands")
		}
		opt, _, err := Optimal(cfg, days)
		if err != nil {
			t.Fatal(err)
		}
		ratio := alg.TotalCost() / opt
		if ratio < float64(k)/3-0.01 {
			t.Errorf("K=%d: adversary ratio %v < K/3 = %v", k, ratio, float64(k)/3)
		}
	}
}

func TestAdversaryDayZeroAlwaysDemanded(t *testing.T) {
	cfg := lease.MeyersonLowerBoundConfig(3)
	alg, _ := NewDeterministic(cfg)
	days, err := RunAdversary(cfg, alg, 512)
	if err != nil {
		t.Fatal(err)
	}
	if days[0] != 0 {
		t.Errorf("first demanded day = %d, want 0", days[0])
	}
}

func TestLowerBoundInstance(t *testing.T) {
	cfg := lease.RandomizedLowerBoundConfig(4, 8)
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		days, err := LowerBoundInstance(cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(days) == 0 || days[0] != 0 {
			t.Fatalf("instance must contain day 0, got %v", days)
		}
		for i := 1; i < len(days); i++ {
			if days[i] <= days[i-1] {
				t.Fatalf("days not sorted: %v", days)
			}
		}
		if days[len(days)-1] >= cfg.LMax() {
			t.Fatalf("day %d outside horizon %d", days[len(days)-1], cfg.LMax())
		}
	}
	if _, err := LowerBoundInstance(lease.MustConfig(lease.Type{Length: 3, Cost: 1}), rng); !errors.Is(err, ErrNotIntervalModel) {
		t.Errorf("error = %v, want ErrNotIntervalModel", err)
	}
	if _, err := LowerBoundInstance(cfg, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

// The randomized algorithm should beat the deterministic one on the
// deterministic lower-bound adversary's stream for moderate K: this is the
// qualitative separation between O(K) and O(log K).
func TestRandomizedBeatsDeterministicOnAdversarialStream(t *testing.T) {
	cfg := lease.MeyersonLowerBoundConfig(4)
	det, _ := NewDeterministic(cfg)
	days, err := RunAdversary(cfg, det, 4096)
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := Optimal(cfg, days)
	if err != nil {
		t.Fatal(err)
	}
	detRatio := det.TotalCost() / opt

	// Replay the same fixed stream through the randomized algorithm. (The
	// adversary was adaptive to det; replaying is a fixed instance, which is
	// exactly the regime where randomization helps.)
	var sum float64
	const trials = 30
	for s := 0; s < trials; s++ {
		ralg, err := NewRandomized(cfg, rand.New(rand.NewSource(int64(100+s))))
		if err != nil {
			t.Fatal(err)
		}
		cost, err := Run(ralg, days)
		if err != nil {
			t.Fatal(err)
		}
		sum += cost / opt
	}
	randRatio := sum / trials
	if randRatio >= detRatio {
		t.Logf("informational: randomized mean ratio %.3f vs deterministic %.3f", randRatio, detRatio)
	}
	if randRatio > detRatio*1.5 {
		t.Errorf("randomized ratio %.3f much worse than deterministic %.3f on adversarial stream", randRatio, detRatio)
	}
}
