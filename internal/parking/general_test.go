package parking

import (
	"math"
	"math/rand"
	"testing"

	"leasing/internal/lease"
	"leasing/internal/workload"
)

func generalConfig() *lease.Config {
	return lease.MustConfig(
		lease.Type{Length: 3, Cost: 2},
		lease.Type{Length: 10, Cost: 4.5},
		lease.Type{Length: 36, Cost: 9},
	)
}

func TestGeneralAdapterFeasibleAndWithinLemmaBound(t *testing.T) {
	orig := generalConfig()
	k := float64(orig.K())
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		days := workload.DemandDays(rng, 120, 0.3)
		if len(days) == 0 {
			continue
		}
		ad, err := NewGeneralAdapter(orig, func(cfg *lease.Config) (Algorithm, error) {
			return NewDeterministic(cfg)
		})
		if err != nil {
			t.Fatal(err)
		}
		cost, err := Run(ad, days)
		if err != nil {
			t.Fatal(err)
		}
		if !CoversAllAfterRun(ad, days) {
			t.Fatalf("seed %d: adapter solution infeasible", seed)
		}
		genOpt, err := OptimalILP(orig, days, false)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Lemma 2.6: a K-competitive interval algorithm yields at most
		// 4K against the general optimum.
		if cost > 4*k*genOpt+1e-6 {
			t.Errorf("seed %d: adapter ratio %v exceeds 4K = %v", seed, cost/genOpt, 4*k)
		}
		if cost < genOpt-1e-6 {
			t.Errorf("seed %d: adapter cost %v below OPT %v", seed, cost, genOpt)
		}
	}
}

func TestGeneralAdapterCostIsTwiceInner(t *testing.T) {
	orig := generalConfig()
	ad, err := NewGeneralAdapter(orig, func(cfg *lease.Config) (Algorithm, error) {
		return NewDeterministic(cfg)
	})
	if err != nil {
		t.Fatal(err)
	}
	days := []int64{0, 1, 2, 7, 8, 30}
	if _, err := Run(ad, days); err != nil {
		t.Fatal(err)
	}
	// Every inner purchase becomes exactly two original leases; because the
	// rounding here keeps costs unchanged (same type costs), the adapter
	// pays exactly twice the inner cost.
	inner := ad.inner.TotalCost()
	roundedTypeCostsMatch := true
	for k := 0; k < ad.rounded.K(); k++ {
		if ad.rounded.Cost(k) != orig.Cost(ad.toOrig[k]) {
			roundedTypeCostsMatch = false
		}
	}
	if roundedTypeCostsMatch && math.Abs(ad.TotalCost()-2*inner) > 1e-9 {
		t.Errorf("adapter cost %v, want exactly 2x inner %v", ad.TotalCost(), inner)
	}
}

func TestGeneralAdapterWithRandomizedInner(t *testing.T) {
	orig := generalConfig()
	rng := rand.New(rand.NewSource(5))
	ad, err := NewGeneralAdapter(orig, func(cfg *lease.Config) (Algorithm, error) {
		return NewRandomized(cfg, rng)
	})
	if err != nil {
		t.Fatal(err)
	}
	days := workload.BurstyDays(rand.New(rand.NewSource(6)), 100, 0.9)
	if _, err := Run(ad, days); err != nil {
		t.Fatal(err)
	}
	if !CoversAllAfterRun(ad, days) {
		t.Error("randomized-inner adapter infeasible")
	}
	if !ad.RoundedConfig().IsIntervalModel() {
		t.Error("rounded config not interval model")
	}
}

func TestGeneralAdapterBuildError(t *testing.T) {
	orig := generalConfig()
	if _, err := NewGeneralAdapter(orig, func(cfg *lease.Config) (Algorithm, error) {
		return NewRandomized(cfg, nil) // nil rng fails
	}); err == nil {
		t.Error("inner build error not propagated")
	}
}
