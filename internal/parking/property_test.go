package parking

import (
	"math/rand"
	"testing"
	"testing/quick"

	"leasing/internal/lease"
)

// daysFromMask converts an arbitrary bitmask into a sorted demand-day
// stream, giving testing/quick full control over stream shapes.
func daysFromMask(mask uint64, offset int16) []int64 {
	var days []int64
	base := int64(offset)
	for b := 0; b < 64; b++ {
		if mask&(1<<b) != 0 {
			days = append(days, base+int64(b))
		}
	}
	return days
}

// Property (Theorem 2.7): for arbitrary demand masks, the deterministic
// algorithm is feasible, dual-feasible, weakly dominated by OPT, and at
// most K-competitive.
func TestQuickDeterministicInvariants(t *testing.T) {
	cfg := lease.MustConfig(
		lease.Type{Length: 1, Cost: 1},
		lease.Type{Length: 8, Cost: 3},
		lease.Type{Length: 64, Cost: 7},
	)
	k := float64(cfg.K())
	f := func(mask uint64, offset int16) bool {
		days := daysFromMask(mask, offset)
		if len(days) == 0 {
			return true
		}
		alg, err := NewDeterministic(cfg)
		if err != nil {
			return false
		}
		cost, err := Run(alg, days)
		if err != nil {
			return false
		}
		if !CoversAllAfterRun(alg, days) || !alg.DualFeasible() {
			return false
		}
		opt, sol, err := Optimal(cfg, days)
		if err != nil || !cfg.CoversAll(sol, days) {
			return false
		}
		return alg.DualTotal() <= opt+1e-6 &&
			cost >= opt-1e-6 &&
			cost <= k*opt+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: the randomized algorithm is feasible and never beats OPT, for
// any demand mask and seed.
func TestQuickRandomizedInvariants(t *testing.T) {
	cfg := lease.MustConfig(
		lease.Type{Length: 2, Cost: 1},
		lease.Type{Length: 16, Cost: 4},
	)
	f := func(mask uint64, offset int16, seed int64) bool {
		days := daysFromMask(mask, offset)
		if len(days) == 0 {
			return true
		}
		alg, err := NewRandomized(cfg, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		cost, err := Run(alg, days)
		if err != nil {
			return false
		}
		if !CoversAllAfterRun(alg, days) {
			return false
		}
		opt, _, err := Optimal(cfg, days)
		if err != nil {
			return false
		}
		return cost >= opt-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: OPT is monotone — adding demand days never lowers the optimum,
// and OPT of a subset never exceeds OPT of the superset.
func TestQuickOptimalMonotone(t *testing.T) {
	cfg := lease.MustConfig(
		lease.Type{Length: 1, Cost: 1},
		lease.Type{Length: 8, Cost: 3},
	)
	f := func(mask, extra uint64) bool {
		sub := daysFromMask(mask, 0)
		super := daysFromMask(mask|extra, 0)
		subOpt, _, err := Optimal(cfg, sub)
		if err != nil {
			return false
		}
		superOpt, _, err := Optimal(cfg, super)
		if err != nil {
			return false
		}
		return subOpt <= superOpt+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: OPT never exceeds the cost of covering every demand day with
// the cheapest single-day choice, and never undercuts cost/K heuristics
// like buying the top lease when demands are dense.
func TestQuickOptimalUpperBoundedByNaive(t *testing.T) {
	cfg := lease.MustConfig(
		lease.Type{Length: 1, Cost: 2},
		lease.Type{Length: 16, Cost: 9},
	)
	f := func(mask uint64) bool {
		days := daysFromMask(mask, 0)
		if len(days) == 0 {
			return true
		}
		opt, _, err := Optimal(cfg, days)
		if err != nil {
			return false
		}
		naive := float64(len(days)) * cfg.Cost(0)
		return opt <= naive+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
