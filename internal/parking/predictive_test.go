package parking

import (
	"errors"
	"math/rand"
	"testing"

	"leasing/internal/lease"
	"leasing/internal/workload"
)

func TestNewPredictiveValidation(t *testing.T) {
	cfg := lease.PowerConfig(3, 4, 0.5)
	if _, err := NewPredictive(lease.MustConfig(lease.Type{Length: 3, Cost: 1}), 0.5); !errors.Is(err, ErrNotIntervalModel) {
		t.Errorf("error = %v, want ErrNotIntervalModel", err)
	}
	for _, p := range []float64{0, -0.1, 1.5} {
		if _, err := NewPredictive(cfg, p); err == nil {
			t.Errorf("p=%v accepted", p)
		}
	}
	if _, err := NewPredictive(cfg, 1); err != nil {
		t.Errorf("p=1 rejected: %v", err)
	}
}

func TestPredictiveExtremes(t *testing.T) {
	// Types: 1 day $1, 16 days $6 (per-day 0.375).
	cfg := lease.MustConfig(
		lease.Type{Length: 1, Cost: 1},
		lease.Type{Length: 16, Cost: 6},
	)
	// Believing p ~ 1 the 16-day lease serves ~16 demands at $6, far better
	// than $1/day: the first purchase must be the long type.
	heavy, err := NewPredictive(cfg, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if err := heavy.Arrive(0); err != nil {
		t.Fatal(err)
	}
	if ls := heavy.Leases(); len(ls) != 1 || ls[0].K != 1 {
		t.Errorf("p=0.99 bought %v, want the long lease", ls)
	}
	// Believing p ~ 0 the expected extra demand is nil: buy the day permit.
	light, err := NewPredictive(cfg, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if err := light.Arrive(0); err != nil {
		t.Fatal(err)
	}
	if ls := light.Leases(); len(ls) != 1 || ls[0].K != 0 {
		t.Errorf("p=0.01 bought %v, want the day lease", ls)
	}
}

func TestPredictiveFeasibleAndOrdered(t *testing.T) {
	cfg := lease.PowerConfig(4, 4, 0.5)
	alg, err := NewPredictive(cfg, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	days := workload.DemandDays(rng, 300, 0.4)
	if _, err := Run(alg, days); err != nil {
		t.Fatal(err)
	}
	if !CoversAllAfterRun(alg, days) {
		t.Error("predictive left demands uncovered")
	}
	if err := alg.Arrive(-5); !errors.Is(err, ErrTimeRegression) {
		t.Errorf("time regression error = %v", err)
	}
}

// With an accurate prior on dense Bernoulli streams the predictive policy
// should beat the worst-case deterministic algorithm on average.
func TestPredictiveBeatsWorstCaseOnDenseStochastic(t *testing.T) {
	cfg := lease.PowerConfig(3, 4, 0.5)
	const p = 0.8
	var predSum, detSum float64
	trials := 12
	for s := 0; s < trials; s++ {
		rng := rand.New(rand.NewSource(int64(40 + s)))
		days := workload.DemandDays(rng, 256, p)
		if len(days) == 0 {
			continue
		}
		opt, _, err := Optimal(cfg, days)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := NewPredictive(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		pCost, err := Run(pred, days)
		if err != nil {
			t.Fatal(err)
		}
		det, err := NewDeterministic(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dCost, err := Run(det, days)
		if err != nil {
			t.Fatal(err)
		}
		predSum += pCost / opt
		detSum += dCost / opt
	}
	if predSum >= detSum {
		t.Errorf("predictive mean ratio %.3f not better than deterministic %.3f on p=%.1f streams",
			predSum/float64(trials), detSum/float64(trials), p)
	}
}
