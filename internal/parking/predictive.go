package parking

import (
	"errors"
	"fmt"

	"leasing/internal/lease"
)

// Predictive is the stochastic-demand policy the Chapter 5 outlook asks
// about: it believes demand days are i.i.d. Bernoulli(p) and, whenever an
// uncovered demand arrives, buys the aligned lease whose cost per
// *expected* served demand is lowest — the remaining window of a type-k
// lease covering day t holds 1 + p*(remaining-1) expected demands.
//
// With an accurate p it exploits the distribution (long leases under heavy
// demand, day permits under light demand); with a wrong p it loses the
// worst-case guarantee the primal-dual algorithms keep — exactly the
// consistency/robustness trade-off experiment E20 measures.
type Predictive struct {
	cfg     *lease.Config
	store   *lease.Store
	p       float64
	lastT   int64
	started bool
}

var _ Algorithm = (*Predictive)(nil)

// NewPredictive builds the policy with believed demand probability p in
// (0, 1].
func NewPredictive(cfg *lease.Config, p float64) (*Predictive, error) {
	if !cfg.IsIntervalModel() {
		return nil, ErrNotIntervalModel
	}
	if !(p > 0 && p <= 1) {
		return nil, fmt.Errorf("parking: believed probability %v outside (0,1]", p)
	}
	return &Predictive{cfg: cfg, store: lease.NewStore(cfg), p: p}, nil
}

// Arrive implements Algorithm.
func (a *Predictive) Arrive(t int64) error {
	if a.started && t < a.lastT {
		return fmt.Errorf("%w: %d after %d", ErrTimeRegression, t, a.lastT)
	}
	a.started, a.lastT = true, t
	if a.store.Covers(t) {
		return nil
	}
	bestK := 0
	bestPrice := priceInf
	for k := 0; k < a.cfg.K(); k++ {
		start := a.cfg.AlignedStart(k, t)
		remaining := start + a.cfg.Length(k) - t // days of the lease still usable
		expected := 1 + a.p*float64(remaining-1)
		if price := a.cfg.Cost(k) / expected; price < bestPrice {
			bestPrice, bestK = price, k
		}
	}
	a.store.Buy(a.cfg.AlignedLease(bestK, t))
	return nil
}

const priceInf = 1e308

// Covers implements Algorithm.
func (a *Predictive) Covers(t int64) bool { return a.store.Covers(t) }

// TotalCost implements Algorithm.
func (a *Predictive) TotalCost() float64 { return a.store.TotalCost() }

// Leases implements Algorithm.
func (a *Predictive) Leases() []lease.Lease { return a.store.Leases() }

// BoughtSince exposes the store's purchase journal for the streaming
// adapter's O(new) decision diff.
func (a *Predictive) BoughtSince(n int) []lease.Lease { return a.store.BoughtSince(n) }

// ErrNoDemand is returned by helpers that need at least one demand day.
var ErrNoDemand = errors.New("parking: no demand days")
