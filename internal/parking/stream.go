package parking

import (
	"fmt"

	"leasing/internal/lease"
	"leasing/internal/stream"
)

// Leaser adapts any parking-permit Algorithm (deterministic, randomized or
// predictive) to the unified stream protocol. The single resource is item
// 0; the adapter delegates every demand to the native Arrive and diffs the
// purchase set to report incremental decisions.
type Leaser struct {
	alg      Algorithm
	journal  purchaseJournal          // non-nil: O(new) diff via the store's buy journal
	cursor   int                      // leases already reported from the journal
	seen     map[lease.Lease]struct{} // fallback diff for algorithms without a journal
	lastCost float64
}

// purchaseJournal is the fast diff path: the built-in algorithms expose
// their store's append-only purchase journal, so the adapter reads each
// new lease exactly once instead of rebuilding and sorting the full
// purchase set per buying demand (which made long streams quadratic).
// External Algorithm implementations without it fall back to the
// purchase-set diff.
type purchaseJournal interface {
	BoughtSince(n int) []lease.Lease
}

var _ stream.Leaser = (*Leaser)(nil)

// NewLeaser wraps a parking-permit algorithm as a stream.Leaser.
func NewLeaser(alg Algorithm) *Leaser {
	l := &Leaser{alg: alg}
	if j, ok := alg.(purchaseJournal); ok {
		l.journal = j
	} else {
		l.seen = make(map[lease.Lease]struct{})
	}
	return l
}

// Observe implements stream.Leaser. It accepts Day payloads (or nil).
func (l *Leaser) Observe(ev stream.Event) (stream.Decision, error) {
	if _, ok := ev.Payload.(stream.Day); !ok && ev.Payload != nil {
		return stream.Decision{}, fmt.Errorf("parking: unsupported payload %T", ev.Payload)
	}
	if err := l.alg.Arrive(ev.Time); err != nil {
		return stream.Decision{}, err
	}
	// A demand that bought nothing left the store untouched, so the total
	// is bit-identical; skip the O(L) purchase-set diff.
	if l.alg.TotalCost() == l.lastCost {
		return stream.Decision{}, nil
	}
	d := stream.Decision{Cost: l.alg.TotalCost() - l.lastCost}
	l.lastCost = l.alg.TotalCost()
	if l.journal != nil {
		bought := l.journal.BoughtSince(l.cursor)
		l.cursor += len(bought)
		for _, ls := range bought {
			d.Leases = append(d.Leases, stream.ItemLease{Item: 0, K: ls.K, Start: ls.Start})
		}
	} else {
		for _, ls := range l.alg.Leases() {
			if _, ok := l.seen[ls]; ok {
				continue
			}
			l.seen[ls] = struct{}{}
			d.Leases = append(d.Leases, stream.ItemLease{Item: 0, K: ls.K, Start: ls.Start})
		}
	}
	stream.SortItemLeases(d.Leases)
	return d, nil
}

// Cost implements stream.Leaser.
func (l *Leaser) Cost() stream.CostBreakdown {
	return stream.CostBreakdown{Lease: l.alg.TotalCost()}
}

// Snapshot implements stream.Leaser.
func (l *Leaser) Snapshot() stream.Solution {
	ls := l.alg.Leases()
	sol := stream.Solution{Leases: make([]stream.ItemLease, len(ls))}
	for i, x := range ls {
		sol.Leases[i] = stream.ItemLease{Item: 0, K: x.K, Start: x.Start}
	}
	stream.SortItemLeases(sol.Leases)
	return sol
}
