package parking

import (
	"fmt"
	"math/rand"

	"leasing/internal/lease"
)

// RunAdversary drives the adaptive adversary of Theorem 2.8 against an
// online algorithm: a client is issued on every day the algorithm's current
// solution does not cover, over a horizon of one top-level window (l_max
// days, capped at maxDays to keep huge configurations tractable — the proof
// only needs each window class to be exercised). It returns the demand days
// it issued. The theorem shows that against configurations such as
// lease.MeyersonLowerBoundConfig, any online algorithm pays Ω(K) times the
// offline optimum on this stream.
func RunAdversary(cfg *lease.Config, alg Algorithm, maxDays int64) ([]int64, error) {
	horizon := cfg.LMax()
	if maxDays > 0 && horizon > maxDays {
		horizon = maxDays
	}
	var days []int64
	for t := int64(0); t < horizon; t++ {
		if alg.Covers(t) {
			continue
		}
		if err := alg.Arrive(t); err != nil {
			return nil, fmt.Errorf("parking: adversary arrival at %d: %w", t, err)
		}
		days = append(days, t)
		if !alg.Covers(t) {
			return nil, fmt.Errorf("parking: algorithm left day %d uncovered", t)
		}
	}
	return days, nil
}

// LowerBoundInstance draws one instance from the randomized Ω(log K)
// distribution of Theorem 2.9: the top-level window is active; an active
// type-k window's i-th type-(k-1) sub-window (0-based) is active with
// probability 2^-i (the first always); every active bottom-type window
// contributes a client on its first day. The returned days are sorted.
func LowerBoundInstance(cfg *lease.Config, rng *rand.Rand) ([]int64, error) {
	if !cfg.IsIntervalModel() {
		return nil, ErrNotIntervalModel
	}
	if rng == nil {
		return nil, fmt.Errorf("parking: nil rng")
	}
	var days []int64
	var gen func(k int, start int64)
	gen = func(k int, start int64) {
		if k == 0 {
			days = append(days, start)
			return
		}
		childLen := cfg.Length(k - 1)
		children := cfg.Length(k) / childLen
		p := 1.0
		for i := int64(0); i < children; i++ {
			if rng.Float64() < p {
				gen(k-1, start+i*childLen)
			}
			p /= 2
		}
	}
	gen(cfg.K()-1, 0)
	return days, nil
}
