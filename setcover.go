package leasing

import (
	"math/rand"

	"leasing/internal/setcover"
	"leasing/internal/workload"
)

// SetFamily is a set system over the universe {0..n-1}.
type SetFamily = setcover.Family

// SetCoverInstance bundles a family, lease configuration, per-set costs and
// a demand stream.
type SetCoverInstance = setcover.Instance

// SetLease is the triple (set, lease type, start).
type SetLease = setcover.SetLease

// ElementArrival is one demand: element Elem arrives at T needing coverage
// by P distinct sets.
type ElementArrival = workload.ElementArrival

// SetCoverLeaser is the randomized online algorithm of thesis Chapter 3.
type SetCoverLeaser = setcover.Online

// Exclusion scopes for multicover semantics (see thesis Corollaries 3.4
// and 3.5).
const (
	// PerArrival: the p covering sets of one arrival must be distinct.
	PerArrival = setcover.PerArrival
	// PerElement: every arrival of an element needs a fresh set
	// (OnlineSetCoverWithRepetitions).
	PerElement = setcover.PerElement
)

// NewSetFamily validates a set system over n elements.
func NewSetFamily(n int, sets [][]int) (*SetFamily, error) {
	return setcover.NewFamily(n, sets)
}

// NewSetCoverInstance validates a full SetMulticoverLeasing input.
// costs[s][k] is the price of leasing set s with type k.
func NewSetCoverInstance(fam *SetFamily, cfg *LeaseConfig, costs [][]float64, arrivals []ElementArrival, scope setcover.ExclusionScope) (*SetCoverInstance, error) {
	return setcover.NewInstance(fam, cfg, costs, arrivals, scope)
}

// NewSetCoverLeaser returns the O(log(δK) log n)-competitive randomized
// online algorithm (thesis Algorithms 3+4, Theorem 3.3).
func NewSetCoverLeaser(inst *SetCoverInstance, rng *rand.Rand) (*SetCoverLeaser, error) {
	return setcover.NewOnline(inst, rng, setcover.Options{})
}

// SetCoverOptimal computes the exact offline optimum by branch and bound
// (nodeLimit <= 0 uses the default), reporting whether it was proven.
func SetCoverOptimal(inst *SetCoverInstance, nodeLimit int) (cost float64, exact bool, err error) {
	res, err := setcover.Optimal(inst, nodeLimit)
	if err != nil {
		return 0, false, err
	}
	return res.Cost, res.Exact, nil
}

// RandomSetFamily draws a random set system over n elements with m sets
// where every element lands in exactly delta sets (the generator behind
// the Chapter 3 experiments and cmd/leasesim's elements mode).
func RandomSetFamily(rng *rand.Rand, n, m, delta int) (*SetFamily, error) {
	return setcover.RandomFamily(rng, n, m, delta)
}

// RandomSetCosts draws per-set, per-type leasing costs around cfg's type
// costs with relative spread in [0, 1).
func RandomSetCosts(rng *rand.Rand, m int, cfg *LeaseConfig, spread float64) [][]float64 {
	return setcover.RandomCosts(rng, m, cfg, spread)
}

// SetCoverGreedy computes the offline greedy baseline.
func SetCoverGreedy(inst *SetCoverInstance) (float64, []SetLease, error) {
	return setcover.Greedy(inst)
}

// VerifySetCover checks a solution covers every arrival as demanded.
func VerifySetCover(inst *SetCoverInstance, bought []SetLease) error {
	return setcover.VerifyFeasible(inst, bought)
}
