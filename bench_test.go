package leasing

// One benchmark per evaluation artifact of the thesis (experiments E1..E20,
// indexed in DESIGN.md). Each bench regenerates its experiment's table in
// quick mode and reports the headline measured quantity as a custom metric,
// so `go test -bench=. -benchmem` reproduces the whole evaluation and its
// costs in one run. The full-size tables are produced by cmd/leasebench,
// the full documents by cmd/leasereport.

import (
	"math/rand"
	"strconv"
	"testing"

	"leasing/internal/deadline"
	"leasing/internal/experiments"
	"leasing/internal/facility"
	"leasing/internal/graph"
	"leasing/internal/ilp"
	"leasing/internal/lease"
	"leasing/internal/lp"
	"leasing/internal/metric"
	"leasing/internal/parking"
	"leasing/internal/setcover"
	"leasing/internal/sim"
	"leasing/internal/steiner"
	"leasing/internal/workload"
)

// benchExperiment runs one experiment per iteration and reports the mean of
// the named numeric column of the last row as "<metric>".
func benchExperiment(b *testing.B, id, column, metric string) {
	b.Helper()
	cfg := experiments.Config{Quick: true, Seed: 2015}
	var last float64
	for i := 0; i < b.N; i++ {
		tb, err := experiments.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		col := -1
		for ci, c := range tb.Columns {
			if c == column {
				col = ci
				break
			}
		}
		if col < 0 {
			b.Fatalf("experiment %s has no column %q (have %v)", id, column, tb.Columns)
		}
		v, err := strconv.ParseFloat(tb.Rows[len(tb.Rows)-1][col], 64)
		if err != nil {
			b.Fatalf("experiment %s column %q cell %q: %v", id, column, tb.Rows[len(tb.Rows)-1][col], err)
		}
		last = v
	}
	b.ReportMetric(last, metric)
}

// BenchmarkE1DeterministicParkingPermit regenerates Theorem 2.7's series:
// the deterministic ratio grows at most linearly in K.
func BenchmarkE1DeterministicParkingPermit(b *testing.B) {
	benchExperiment(b, "E1", "mean_ratio", "ratio@maxK")
}

// BenchmarkE2DeterministicLowerBound regenerates the Theorem 2.8 adversary:
// ratio >= K/3 on the hard configuration.
func BenchmarkE2DeterministicLowerBound(b *testing.B) {
	benchExperiment(b, "E2", "ratio", "ratio@maxK")
}

// BenchmarkE3RandomizedParkingPermit regenerates the O(log K) series of
// Meyerson's randomized algorithm.
func BenchmarkE3RandomizedParkingPermit(b *testing.B) {
	benchExperiment(b, "E3", "mean_ratio", "ratio@maxK")
}

// BenchmarkE4RandomizedLowerBound regenerates the Theorem 2.9 hard
// distribution.
func BenchmarkE4RandomizedLowerBound(b *testing.B) {
	benchExperiment(b, "E4", "rand_ratio", "ratio@maxK")
}

// BenchmarkE5IntervalModelTransform regenerates the Lemma 2.6 factor-4
// check.
func BenchmarkE5IntervalModelTransform(b *testing.B) {
	benchExperiment(b, "E5", "max_ratio", "max-ratio")
}

// BenchmarkE6SetMulticoverLeasing regenerates the Theorem 3.3 sweep.
func BenchmarkE6SetMulticoverLeasing(b *testing.B) {
	benchExperiment(b, "E6", "mean_ratio", "ratio@max")
}

// BenchmarkE7OnlineSetMulticover regenerates the Corollary 3.4 reduction.
func BenchmarkE7OnlineSetMulticover(b *testing.B) {
	benchExperiment(b, "E7", "mean_ratio", "ratio@maxN")
}

// BenchmarkE8SetCoverRepetitions regenerates the Corollary 3.5 variant.
func BenchmarkE8SetCoverRepetitions(b *testing.B) {
	benchExperiment(b, "E8", "mean_ratio", "ratio@maxN")
}

// BenchmarkE9FacilityLeasing regenerates the Theorem 4.5 arrival-pattern
// sweep.
func BenchmarkE9FacilityLeasing(b *testing.B) {
	benchExperiment(b, "E9", "mean_ratio", "ratio@lastPattern")
}

// BenchmarkE10OnlineLeasingDeadlines regenerates the Theorem 5.3 sweeps.
func BenchmarkE10OnlineLeasingDeadlines(b *testing.B) {
	benchExperiment(b, "E10", "mean_ratio", "ratio@maxD")
}

// BenchmarkE11TightExample regenerates the Proposition 5.4 instance.
func BenchmarkE11TightExample(b *testing.B) {
	benchExperiment(b, "E11", "ratio", "ratio@maxD")
}

// BenchmarkE12SCLD regenerates the Theorem 5.7 sweep.
func BenchmarkE12SCLD(b *testing.B) {
	benchExperiment(b, "E12", "mean_ratio", "ratio@maxD")
}

// BenchmarkE13TimeIndependence regenerates the Corollary 5.8 flatness
// check.
func BenchmarkE13TimeIndependence(b *testing.B) {
	benchExperiment(b, "E13", "mean_ratio", "ratio@maxHorizon")
}

// BenchmarkE14CloudSubcontractor regenerates the Section 1.3 narrative
// comparison.
func BenchmarkE14CloudSubcontractor(b *testing.B) {
	benchExperiment(b, "E14", "cost", "opt-cost")
}

// BenchmarkE15MISAblation regenerates the phase-2 ordering ablation.
func BenchmarkE15MISAblation(b *testing.B) {
	benchExperiment(b, "E15", "mean_cost", "cost@byIndex")
}

// BenchmarkE16RoundingAblation regenerates the rounding-draw ablation.
func BenchmarkE16RoundingAblation(b *testing.B) {
	benchExperiment(b, "E16", "mean_ratio", "ratio@maxDraws")
}

// BenchmarkDeterministicParkingPermitArrive micro-benchmarks the hot path
// of the Chapter 2 primal-dual algorithm (per-demand work is O(K)).
func BenchmarkDeterministicParkingPermitArrive(b *testing.B) {
	cfg := lease.PowerConfig(6, 4, 0.5)
	alg, err := parking.NewDeterministic(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := alg.Arrive(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRandomizedParkingPermitArrive micro-benchmarks the randomized
// algorithm's per-demand work (fraction updates plus rounding).
func BenchmarkRandomizedParkingPermitArrive(b *testing.B) {
	cfg := lease.PowerConfig(6, 4, 0.5)
	alg, err := parking.NewRandomized(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := alg.Arrive(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOfflineParkingDP micro-benchmarks the laminar DP optimum on a
// dense 4096-day instance.
func BenchmarkOfflineParkingDP(b *testing.B) {
	cfg := lease.PowerConfig(6, 4, 0.5)
	days := make([]int64, 4096)
	for i := range days {
		days[i] = int64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := parking.Optimal(cfg, days); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE17SteinerTreeLeasing regenerates the Steiner-tree-leasing
// extension sweep.
func BenchmarkE17SteinerTreeLeasing(b *testing.B) {
	benchExperiment(b, "E17", "mean_ratio", "ratio@max")
}

// BenchmarkE18CoverReductions regenerates the vertex/edge cover leasing
// reductions.
func BenchmarkE18CoverReductions(b *testing.B) {
	benchExperiment(b, "E18", "mean_ratio", "ratio@last")
}

// BenchmarkE19CapacitatedFacility regenerates the price-of-capacity sweep.
func BenchmarkE19CapacitatedFacility(b *testing.B) {
	benchExperiment(b, "E19", "greedy_rate_ratio", "ratio@maxCap")
}

// BenchmarkE20StochasticDemand regenerates the prior-aware-vs-worst-case
// study.
func BenchmarkE20StochasticDemand(b *testing.B) {
	benchExperiment(b, "E20", "pred_ratio", "ratio@last")
}

// BenchmarkE21ReusablePool regenerates the reusable-resource pool sweep
// (online allocator vs the offline per-unit oracle).
func BenchmarkE21ReusablePool(b *testing.B) {
	benchExperiment(b, "E21", "mean_ratio", "ratio@last")
}

// BenchmarkE22ReusablePredictions regenerates the learning-augmented
// consistency/robustness study for the reusable pool.
func BenchmarkE22ReusablePredictions(b *testing.B) {
	benchExperiment(b, "E22", "pred_ratio", "ratio@last")
}

// BenchmarkSetCoverLeaserArrive micro-benchmarks one demand of the
// Chapter 3 randomized algorithm (fraction updates + rounding) on a
// 32-element, delta=3 instance.
func BenchmarkSetCoverLeaserArrive(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cfg := lease.PowerConfig(3, 4, 0.5)
	inst, err := setcover.RandomInstance(rng, cfg, 32, 32, 3, 1<<30, 0, 1, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	alg, err := setcover.NewOnline(inst, rng, setcover.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := alg.Arrive(int64(i), i%32, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFacilityLeaserStep micro-benchmarks one time step of the
// Chapter 4 two-phase primal-dual with a 2-client batch over 5 sites.
func BenchmarkFacilityLeaserStep(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	cfg := lease.PowerConfig(2, 4, 0.5)
	inst, err := facility.RandomInstance(rng, cfg, facility.GenParams{
		Sites: 5, Steps: 1, Pattern: workload.PatternConstant,
		Base: 2, MaxPerStep: 2, WorldSize: 40, CostSpread: 0.3,
	})
	if err != nil {
		b.Fatal(err)
	}
	alg, err := facility.NewOnline(inst, facility.Options{ResetEachRound: true})
	if err != nil {
		b.Fatal(err)
	}
	batch := []metric.Point{{X: 1, Y: 2}, {X: 30, Y: 20}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := alg.Step(int64(i), batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeadlineLeaserArrive micro-benchmarks one OLD client with a
// moderate window.
func BenchmarkDeadlineLeaserArrive(b *testing.B) {
	cfg := lease.PowerConfig(3, 4, 0.5)
	alg, err := deadline.NewOnline(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := alg.Arrive(int64(2*i), 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSteinerServe micro-benchmarks one routing+leasing request on a
// 24-node network.
func BenchmarkSteinerServe(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g, err := graph.RandomConnected(rng, 24, 48, 1, 4)
	if err != nil {
		b.Fatal(err)
	}
	cfg := lease.PowerConfig(3, 4, 0.5)
	inst, err := steiner.NewInstance(g, cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	alg, err := steiner.NewOnline(inst)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := steiner.Request{Time: int64(i), S: i % 24, T: (i*7 + 5) % 24}
		if req.S == req.T {
			req.T = (req.T + 1) % 24
		}
		if err := alg.Serve(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimplexSolve micro-benchmarks the LP substrate on a 40-variable
// covering relaxation.
func BenchmarkSimplexSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	const n = 40
	costs := make([]float64, n)
	for i := range costs {
		costs[i] = 1 + rng.Float64()*4
	}
	prob := lp.NewMinimize(costs)
	for r := 0; r < 25; r++ {
		row := map[int]float64{}
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.3 {
				row[j] = 1
			}
		}
		row[rng.Intn(n)] = 1
		if err := prob.Add(row, lp.GE, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := prob.Solve()
		if err != nil || sol.Status != lp.Optimal {
			b.Fatalf("status %v err %v", sol.Status, err)
		}
	}
}

// BenchmarkBranchAndBound micro-benchmarks the exact solver on a
// 20-variable covering ILP.
func BenchmarkBranchAndBound(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	const n = 20
	costs := make([]float64, n)
	for i := range costs {
		costs[i] = 1 + rng.Float64()*4
	}
	rows := make([]map[int]float64, 14)
	for r := range rows {
		row := map[int]float64{}
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.3 {
				row[j] = 1
			}
		}
		row[rng.Intn(n)] = 1
		rows[r] = row
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prob := ilp.NewBinaryMinimize(costs)
		for _, row := range rows {
			if err := prob.Add(row, lp.GE, 1); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := prob.Solve(ilp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRatiosWorkers measures the trial engine itself on a CPU-bound
// parking sweep, isolating the worker-pool speedup from any one
// experiment's instance generation.
func benchRatiosWorkers(b *testing.B, workers int) {
	lcfg := lease.PowerConfig(5, 4, 0.5)
	days := make([]int64, 1024)
	for i := range days {
		days[i] = int64(i * 2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := sim.RatiosWorkers(16, 2015, workers, func(rng *rand.Rand) (float64, float64, error) {
			alg, err := parking.NewDeterministic(lcfg)
			if err != nil {
				return 0, 0, err
			}
			online, err := parking.Run(alg, days)
			if err != nil {
				return 0, 0, err
			}
			opt, _, err := parking.Optimal(lcfg, days)
			if err != nil {
				return 0, 0, err
			}
			return online, opt, nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimRatiosSequential pins the single-worker baseline of the
// trial engine.
func BenchmarkSimRatiosSequential(b *testing.B) { benchRatiosWorkers(b, 1) }

// BenchmarkSimRatiosParallel runs the same sweep on the GOMAXPROCS pool;
// the summary is identical, only the wall clock changes.
func BenchmarkSimRatiosParallel(b *testing.B) { benchRatiosWorkers(b, 0) }
