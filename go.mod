module leasing

go 1.24
