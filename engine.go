package leasing

// The sharded multi-tenant serving layer. Where Replay drives one Leaser
// over one demand stream on one goroutine, the Engine multiplexes many
// independent tenant sessions: each tenant is hashed to a shard, each
// shard drains a batched, backpressured event queue on its own goroutine,
// and Cost/Snapshot/Result serve from cached state without touching a
// Leaser. Per tenant the engine is exactly Replay — its recorded output
// is byte-identical to a single-threaded Replay of that tenant's events
// for any shard count and batch size (internal/engine's parity tests
// enforce this). cmd/leaseload measures the layer's sustained throughput;
// docs/ARCHITECTURE.md describes how it slots between the stream protocol
// and the tools.

import (
	"leasing/internal/engine"
)

// Engine multiplexes many tenant Leaser sessions across shards. Create
// one with NewEngine and release it with Close; see EngineConfig for the
// knobs. Events of a single tenant must be submitted from one goroutine
// (per-tenant determinism is defined by submission order); everything
// else is safe for concurrent use.
type Engine = engine.Engine

// EngineConfig sizes an Engine: shard count, per-shard queue depth
// (backpressure), max events drained per processing wake, and whether
// per-session runs are recorded for Result. The zero value selects
// sensible defaults.
type EngineConfig = engine.Config

// EngineMetrics aggregates the per-shard counters of an Engine.
type EngineMetrics = engine.Metrics

// EngineShardMetrics is one shard's counter sample.
type EngineShardMetrics = engine.ShardMetrics

// Engine sentinel errors; returned errors wrap these.
var (
	// ErrEngineClosed is returned by engine operations after Close.
	ErrEngineClosed = engine.ErrClosed
	// ErrUnknownTenant is returned by engine reads for tenants that were
	// never opened.
	ErrUnknownTenant = engine.ErrUnknownTenant
	// ErrDuplicateTenant is returned by Open for an already-open tenant.
	ErrDuplicateTenant = engine.ErrDuplicateTenant
	// ErrNotRecording is returned by Result when the engine was built
	// without RecordRuns.
	ErrNotRecording = engine.ErrNotRecording
	// ErrBackpressure is returned by TrySubmitBatch when the owning
	// shard's queue is full (SubmitBatch would have blocked).
	ErrBackpressure = engine.ErrBackpressure
	// ErrTenantClosed is returned by CloseTenant for an already-closed
	// tenant.
	ErrTenantClosed = engine.ErrTenantClosed
)

// NewEngine starts a sharded multi-tenant engine with cfg's shard
// goroutines running; Close it to release them.
func NewEngine(cfg EngineConfig) *Engine { return engine.New(cfg) }
