package leasing

import (
	"math/rand"

	"leasing/internal/parking"
)

// ParkingPermitAlgorithm is an online algorithm for the parking permit
// problem: demands are days that must be covered by a lease.
type ParkingPermitAlgorithm = parking.Algorithm

// NewDeterministicParkingPermit returns the deterministic primal-dual
// algorithm of thesis Algorithm 1, K-competitive in the interval model
// (Theorem 2.7). The configuration must be in the interval model.
func NewDeterministicParkingPermit(cfg *LeaseConfig) (ParkingPermitAlgorithm, error) {
	return parking.NewDeterministic(cfg)
}

// NewRandomizedParkingPermit returns Meyerson's randomized algorithm
// (thesis Algorithm 2), O(log K)-competitive in expectation. rng drives the
// single threshold draw.
func NewRandomizedParkingPermit(cfg *LeaseConfig, rng *rand.Rand) (ParkingPermitAlgorithm, error) {
	return parking.NewRandomized(cfg, rng)
}

// ParkingPermitOptimal returns the exact offline optimum for covering the
// demand days in the interval model, with an optimal lease set.
func ParkingPermitOptimal(cfg *LeaseConfig, days []int64) (float64, []Lease, error) {
	return parking.Optimal(cfg, days)
}

// RunParkingPermit feeds sorted demand days through an algorithm and
// returns the final cost.
func RunParkingPermit(alg ParkingPermitAlgorithm, days []int64) (float64, error) {
	return parking.Run(alg, days)
}

// NewPredictiveParkingPermit returns the stochastic-demand policy of the
// Chapter 5 outlook: it believes demands are i.i.d. Bernoulli(p) and buys
// the lease with the lowest cost per expected served demand. Accurate
// priors beat the worst-case algorithms on distributional streams; wrong
// priors lose the competitive guarantee (experiment E20).
func NewPredictiveParkingPermit(cfg *LeaseConfig, p float64) (ParkingPermitAlgorithm, error) {
	return parking.NewPredictive(cfg, p)
}

// ParkingPermitAdversary drives the Theorem 2.8 adaptive adversary against
// alg for up to maxDays steps and returns the demanded days. Combine with
// lease.MeyersonLowerBoundConfig-style pricing to observe the Ω(K) lower
// bound.
func ParkingPermitAdversary(cfg *LeaseConfig, alg ParkingPermitAlgorithm, maxDays int64) ([]int64, error) {
	return parking.RunAdversary(cfg, alg, maxDays)
}
