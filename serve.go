package leasing

// The network boundary of the serving stack. Serve wraps an Engine in
// the HTTP/JSON lease service handler (the one cmd/leased runs) and
// Dial returns the Go client for a running daemon — so tenants can
// submit demands remotely with the same semantics the in-process engine
// gives: deterministic per-tenant output, flush read barriers, and
// bounded ingestion (backpressure surfaces as retried 429s inside the
// client's Submit). The wire protocol — event encodings, open-session
// specs, endpoint declarations and error codes — lives in
// internal/wire, and docs/API.md is generated from it; docs/OPERATIONS.md
// covers running the daemon.

import (
	"leasing/internal/client"
	"leasing/internal/server"
	"leasing/internal/wire"
)

// LeaseServer is the lease service http.Handler; build one with Serve.
type LeaseServer = server.Server

// LeaseServerConfig shapes a LeaseServer: per-tenant auth tokens,
// ingestion chunking and body limits. The zero value serves
// unauthenticated with defaults.
type LeaseServerConfig = server.Config

// RemoteClient is the Go client of a lease service; build one with Dial.
type RemoteClient = client.Client

// RemoteClientOptions shapes a RemoteClient: bearer token, HTTP client,
// submit chunking and backpressure retry policy.
type RemoteClientOptions = client.Options

// RemoteOpenRequest describes a session to open remotely: the algorithm
// domain, the lease configuration, a seed for the randomized domains,
// and the instance spec for the instance-based ones. Construction is
// deterministic: the same request always builds the same algorithm.
type RemoteOpenRequest = wire.OpenRequest

// RemoteLeaseType is one lease type of a RemoteOpenRequest.
type RemoteLeaseType = wire.LeaseType

// RemoteEvent is one demand in its wire (JSON) form.
type RemoteEvent = wire.Event

// Serve wraps eng in the lease service handler serving the HTTP/JSON
// protocol of docs/API.md: per-tenant session endpoints (open, submit
// with NDJSON streaming, flush, close) plus cost, snapshot, result and
// metrics reads, with backpressure mapped to 429s. The caller keeps
// ownership of eng — shut the HTTP server down first, then Close the
// engine to drain, as cmd/leased does on SIGTERM.
func Serve(eng *Engine, cfg LeaseServerConfig) *LeaseServer {
	return server.New(eng, cfg)
}

// Dial returns a client for the lease service at baseURL (e.g.
// "http://127.0.0.1:8080"). The client chunks Submit calls, retries
// backpressure 429s with exponential backoff resuming after the
// server's accepted count, and decodes wire errors into typed values.
func Dial(baseURL string, opts RemoteClientOptions) *RemoteClient {
	return client.New(baseURL, opts)
}

// WireEvents converts in-process events to their wire form, the payload
// of RemoteClient.Submit.
func WireEvents(evs []Event) ([]RemoteEvent, error) {
	return wire.FromStreamEvents(evs)
}

// WireLeaseTypes converts a lease configuration to the Types field of a
// RemoteOpenRequest.
func WireLeaseTypes(cfg *LeaseConfig) []RemoteLeaseType {
	return wire.ConfigTypes(cfg)
}
