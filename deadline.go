package leasing

import (
	"math/rand"

	"leasing/internal/deadline"
	"leasing/internal/workload"
)

// DeadlineClient is a flexible demand: it arrives at T and may be served on
// any day of [T, T+D].
type DeadlineClient = workload.DeadlineClient

// DeadlineInstance is an OnlineLeasingWithDeadlines input.
type DeadlineInstance = deadline.Instance

// DeadlineLeaser is the deterministic primal-dual algorithm of thesis
// Section 5.3, Θ(K + d_max/l_min)-competitive (O(K) for uniform slacks).
type DeadlineLeaser = deadline.Online

// SCLDInstance is a SetCoverLeasingWithDeadlines input (thesis Section
// 5.5).
type SCLDInstance = deadline.SCLDInstance

// SCLDArrival is one SCLD demand.
type SCLDArrival = deadline.SCLDArrival

// SCLDLeaser is the randomized algorithm of thesis Algorithm 5.
type SCLDLeaser = deadline.SCLDOnline

// NewDeadlineInstance validates an OLD input (interval-model configuration
// and a client stream sorted by arrival).
func NewDeadlineInstance(cfg *LeaseConfig, clients []DeadlineClient) (*DeadlineInstance, error) {
	return deadline.NewInstance(cfg, clients)
}

// NewDeadlineLeaser returns the OLD primal-dual algorithm.
func NewDeadlineLeaser(cfg *LeaseConfig) (*DeadlineLeaser, error) {
	return deadline.NewOnline(cfg)
}

// DeadlineOptimal computes the exact offline OLD optimum.
func DeadlineOptimal(in *DeadlineInstance, nodeLimit int) (float64, error) {
	return deadline.Optimal(in, nodeLimit)
}

// DeadlineTightInstance builds the Proposition 5.4 lower-bound instance on
// which the online ratio is Θ(d_max/l_min) while OPT pays 1+eps.
func DeadlineTightInstance(lmin, dmax int64, eps float64) (*DeadlineInstance, error) {
	return deadline.TightInstance(lmin, dmax, eps)
}

// VerifyDeadline checks every client of the instance is served by sol
// within its window.
func VerifyDeadline(in *DeadlineInstance, sol []Lease) error {
	return deadline.VerifyFeasible(in, sol)
}

// NewSCLDInstance validates a SetCoverLeasingWithDeadlines input.
func NewSCLDInstance(fam *SetFamily, cfg *LeaseConfig, costs [][]float64, arrivals []SCLDArrival) (*SCLDInstance, error) {
	return deadline.NewSCLDInstance(fam, cfg, costs, arrivals)
}

// NewSCLDLeaser returns the randomized SCLD algorithm (Theorem 5.7); with
// all slacks zero it is the time-independent SetCoverLeasing algorithm of
// Corollary 5.8.
func NewSCLDLeaser(inst *SCLDInstance, rng *rand.Rand) (*SCLDLeaser, error) {
	return deadline.NewSCLDOnline(inst, rng)
}

// VerifySCLD checks every arrival of the instance is covered by a bought
// triple of a containing set whose window intersects the arrival's window.
func VerifySCLD(inst *SCLDInstance, bought []SetLease) error {
	return deadline.VerifySCLDFeasible(inst, bought)
}

// SCLDOptimal computes the exact offline SCLD optimum.
func SCLDOptimal(inst *SCLDInstance, nodeLimit int) (cost float64, exact bool, err error) {
	return deadline.SCLDOptimal(inst, nodeLimit)
}
