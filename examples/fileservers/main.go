// File servers (thesis Chapter 3, SetMulticoverLeasing).
//
// A number of servers each host a subset of files. Users arrive over time
// requesting a file with a replication requirement: the file must be
// available from p distinct active servers at that moment. Activating
// (leasing) a server costs money, longer activations cost less per day.
// The randomized O(log(δK) log n) online algorithm decides which servers
// to activate, for how long, and when.
//
// Run with: go run ./examples/fileservers
package main

import (
	"fmt"
	"math/rand"
	"os"

	"leasing"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fileservers:", err)
		os.Exit(1)
	}
}

func run() error {
	// Server activations: 2 days $2, 8 days $5, 32 days $11.
	cfg, err := leasing.NewLeaseConfig(
		leasing.LeaseType{Length: 2, Cost: 2},
		leasing.LeaseType{Length: 8, Cost: 5},
		leasing.LeaseType{Length: 32, Cost: 11},
	)
	if err != nil {
		return err
	}

	// 8 files hosted across 6 servers (file -> servers hosting it is the
	// "element -> sets containing it" relation).
	hosting := [][]int{
		{0, 1, 2, 3}, // server 0
		{0, 4, 5},    // server 1
		{1, 4, 6, 7}, // server 2
		{2, 5, 6},    // server 3
		{3, 6, 7},    // server 4
		{0, 1, 5, 7}, // server 5
	}
	fam, err := leasing.NewSetFamily(8, hosting)
	if err != nil {
		return err
	}

	// Per-server pricing: servers 1 and 4 run older hardware at a discount.
	costs := make([][]float64, fam.M())
	for s := range costs {
		factor := 1.0
		if s == 1 || s == 4 {
			factor = 0.8
		}
		costs[s] = []float64{2 * factor, 5 * factor, 11 * factor}
	}

	// A month of user requests: popular files follow a Zipf-like skew, and
	// a third of requests demand 2-replication.
	rng := rand.New(rand.NewSource(99))
	popular := []int{0, 0, 0, 1, 1, 2, 3, 4, 5, 6, 7}
	var arrivals []leasing.ElementArrival
	for day := int64(0); day < 30; day++ {
		if rng.Float64() < 0.6 {
			p := 1
			if rng.Float64() < 0.33 {
				p = 2
			}
			arrivals = append(arrivals, leasing.ElementArrival{
				T: day, Elem: popular[rng.Intn(len(popular))], P: p,
			})
		}
	}

	inst, err := leasing.NewSetCoverInstance(fam, cfg, costs, arrivals, leasing.PerArrival)
	if err != nil {
		return err
	}
	fmt.Printf("%d file requests over 30 days (δ = %d servers per file)\n\n", len(arrivals), fam.Delta())

	alg, err := leasing.NewSetCoverLeaser(inst, rng)
	if err != nil {
		return err
	}
	if err := alg.Run(); err != nil {
		return err
	}
	if err := leasing.VerifySetCover(inst, alg.Bought()); err != nil {
		return err
	}
	fmt.Printf("online activations: $%.2f over %d server leases\n", alg.TotalCost(), len(alg.Bought()))

	gCost, _, err := leasing.SetCoverGreedy(inst)
	if err != nil {
		return err
	}
	fmt.Printf("offline greedy:     $%.2f\n", gCost)

	opt, exact, err := leasing.SetCoverOptimal(inst, 60000)
	if err != nil {
		return err
	}
	label := "offline optimum"
	if !exact {
		label = "offline bound"
	}
	fmt.Printf("%s:    $%.2f\n", label, opt)
	fmt.Printf("competitive ratio:  %.2f\n", alg.TotalCost()/opt)
	return nil
}
