// Cloud subcontractor (thesis Fig. 1.2 and Chapter 4, FacilityLeasing).
//
// A subcontractor leases machines from cloud providers at different
// locations and serves clients who call day by day; serving a client from
// a provider costs the network distance, and leasing a machine costs more
// up front for longer terms but less per day. The subcontractor runs the
// two-phase primal-dual algorithm of Chapter 4 and is compared with the
// two naive strategies (rent daily, commit long) and the offline optimum.
//
// Run with: go run ./examples/cloudsub
package main

import (
	"fmt"
	"math/rand"
	"os"

	"leasing"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cloudsub:", err)
		os.Exit(1)
	}
}

func run() error {
	// Machine leases: 1 day $3, 4 days $7, 8 days $10.
	cfg, err := leasing.NewLeaseConfig(
		leasing.LeaseType{Length: 1, Cost: 3},
		leasing.LeaseType{Length: 4, Cost: 7},
		leasing.LeaseType{Length: 8, Cost: 10},
	)
	if err != nil {
		return err
	}

	// Three providers in a 40x40 region.
	providers := []leasing.Point{{X: 5, Y: 5}, {X: 35, Y: 10}, {X: 20, Y: 32}}
	costs := [][]float64{
		{3, 7, 10},     // provider 0: list prices
		{3.6, 8.4, 12}, // provider 1: 20% premium
		{2.7, 6.3, 9},  // provider 2: 10% discount
	}

	// Two weeks of phone calls, clustered near the providers.
	rng := rand.New(rand.NewSource(21))
	batches := make([][]leasing.Point, 14)
	for day := range batches {
		calls := 1 + rng.Intn(3)
		for c := 0; c < calls; c++ {
			p := providers[rng.Intn(len(providers))]
			batches[day] = append(batches[day], leasing.Point{
				X: p.X + rng.NormFloat64()*4,
				Y: p.Y + rng.NormFloat64()*4,
			})
		}
	}

	inst, err := leasing.NewFacilityInstance(cfg, providers, costs, batches)
	if err != nil {
		return err
	}
	fmt.Printf("%d clients call over %d days\n\n", inst.NumClients(), inst.Steps())

	alg, err := leasing.NewFacilityLeaser(inst)
	if err != nil {
		return err
	}
	if err := alg.Run(); err != nil {
		return err
	}
	leases, assigns := alg.Solution()
	if _, err := leasing.VerifyFacility(inst, leases, assigns); err != nil {
		return err
	}
	fmt.Printf("primal-dual subcontractor: $%.2f (leases $%.2f + connections $%.2f, %d leases)\n",
		alg.TotalCost(), alg.LeaseCost(), alg.ConnectionCost(), len(leases))

	opt, exact, err := leasing.FacilityOptimal(inst, 6000)
	if err != nil {
		return err
	}
	label := "offline optimum"
	if !exact {
		label = "offline lower bound"
	}
	fmt.Printf("%s: $%.2f\n", label, opt)
	fmt.Printf("competitive ratio: %.2f (theory: O(K log l_max) on steady demand)\n", alg.TotalCost()/opt)
	return nil
}
