// Quickstart: the Parking Permit Problem (thesis Fig. 1.1).
//
// On rainy days you must hold a valid parking permit; permits come in
// several durations, longer ones cheaper per day. The online algorithm
// must decide which permit to buy without a weather forecast. This example
// runs the deterministic O(K) primal-dual algorithm on a month of weather
// and compares it with the exact offline optimum.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"os"

	"leasing"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// Three permit types: 1 day for $1, 4 days for $2.50, 16 days for $6.
	cfg, err := leasing.NewLeaseConfig(
		leasing.LeaseType{Length: 1, Cost: 1},
		leasing.LeaseType{Length: 4, Cost: 2.5},
		leasing.LeaseType{Length: 16, Cost: 6},
	)
	if err != nil {
		return err
	}

	// A month of weather: rainy with probability 0.45, in streaks.
	rng := rand.New(rand.NewSource(7))
	var rainy []int64
	wet := false
	for day := int64(0); day < 30; day++ {
		if rng.Float64() < 0.25 {
			wet = !wet
		}
		if wet {
			rainy = append(rainy, day)
		}
	}
	fmt.Printf("rainy days: %v\n\n", rainy)

	alg, err := leasing.NewDeterministicParkingPermit(cfg)
	if err != nil {
		return err
	}
	for _, day := range rainy {
		before := alg.TotalCost()
		if err := alg.Arrive(day); err != nil {
			return err
		}
		if spent := alg.TotalCost() - before; spent > 0 {
			fmt.Printf("day %2d: rain — bought $%.2f of permits (total $%.2f)\n", day, spent, alg.TotalCost())
		} else {
			fmt.Printf("day %2d: rain — already covered\n", day)
		}
	}

	opt, sol, err := leasing.ParkingPermitOptimal(cfg, rainy)
	if err != nil {
		return err
	}
	fmt.Printf("\nonline total:  $%.2f over %d permits\n", alg.TotalCost(), len(alg.Leases()))
	fmt.Printf("offline OPT:   $%.2f over %d permits (with hindsight)\n", opt, len(sol))
	fmt.Printf("price of not knowing the future: %.2fx (theory: at most %dx)\n",
		alg.TotalCost()/opt, cfg.K())
	return nil
}
