// Network provider (SteinerTreeLeasing, the companion problem Meyerson
// introduced with the parking permit problem; thesis Section 5.1).
//
// A service provider does not own the network: links must be leased to
// keep communicating branch offices connected, and leases expire. Pairs of
// offices announce sessions day by day; the provider routes each session
// over a mix of already-leased links (free) and new leases (paid), letting
// a per-link parking-permit strategy choose lease durations — heavily used
// links graduate to long leases on their own.
//
// Run with: go run ./examples/netprovider
package main

import (
	"fmt"
	"math/rand"
	"os"

	"leasing"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "netprovider:", err)
		os.Exit(1)
	}
}

func run() error {
	// Link leases: per unit link weight, 1 day x1.0, 8 days x4.0, 32 days x10.
	cfg, err := leasing.NewLeaseConfig(
		leasing.LeaseType{Length: 1, Cost: 1},
		leasing.LeaseType{Length: 8, Cost: 4},
		leasing.LeaseType{Length: 32, Cost: 10},
	)
	if err != nil {
		return err
	}

	// A 12-office network with some redundancy.
	rng := rand.New(rand.NewSource(33))
	g, err := leasing.RandomConnectedGraph(rng, 12, 22, 1, 3)
	if err != nil {
		return err
	}

	// A month of sessions: two chatty office pairs plus background traffic.
	var reqs []leasing.SteinerRequest
	for day := int64(0); day < 30; day++ {
		reqs = append(reqs, leasing.SteinerRequest{Time: day, S: 0, T: 7})
		if day%2 == 0 {
			reqs = append(reqs, leasing.SteinerRequest{Time: day, S: 3, T: 11})
		}
		if rng.Float64() < 0.3 {
			s, t := rng.Intn(12), rng.Intn(12)
			if s != t {
				reqs = append(reqs, leasing.SteinerRequest{Time: day, S: s, T: t})
			}
		}
	}
	inst, err := leasing.NewSteinerInstance(g, cfg, reqs)
	if err != nil {
		return err
	}
	fmt.Printf("%d sessions over 30 days on a %d-office / %d-link network\n\n",
		len(reqs), g.N(), g.M())

	alg, err := leasing.NewSteinerLeaser(inst)
	if err != nil {
		return err
	}
	if err := alg.Run(); err != nil {
		return err
	}
	if err := alg.VerifyFeasible(); err != nil {
		return err
	}
	fmt.Printf("online link leasing:    $%.2f\n", alg.TotalCost())

	baseline, err := leasing.SteinerOfflineBaseline(inst)
	if err != nil {
		return err
	}
	fmt.Printf("hindsight static plan:  $%.2f\n", baseline)
	fmt.Printf("price of leasing online: %.2fx (per-link guarantee: at most %dx the plan)\n",
		alg.TotalCost()/baseline, cfg.K())
	return nil
}
