// Tour guide hiring (thesis Chapter 5, OnlineLeasingWithDeadlines).
//
// A travel agency hires guides for city tours. Tourists announce a window:
// "any day before I leave works". Guides are hired for blocks of days —
// longer blocks cost less per day — and a tourist is happy if a guide is
// working on at least one day of their window. The Chapter 5 primal-dual
// algorithm decides when to hire and for how long; patient tourists are
// batched onto shared guide days via the deadline mirror trick.
//
// Run with: go run ./examples/tourguide
package main

import (
	"fmt"
	"math/rand"
	"os"

	"leasing"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tourguide:", err)
		os.Exit(1)
	}
}

func run() error {
	// Guide contracts: 2 days $5, 8 days $14, 32 days $40.
	cfg, err := leasing.NewLeaseConfig(
		leasing.LeaseType{Length: 2, Cost: 5},
		leasing.LeaseType{Length: 8, Cost: 14},
		leasing.LeaseType{Length: 32, Cost: 40},
	)
	if err != nil {
		return err
	}

	// A season of tourists; most can wait a few days, some leave same-day.
	rng := rand.New(rand.NewSource(12))
	var tourists []leasing.DeadlineClient
	for day := int64(0); day < 60; day++ {
		if rng.Float64() < 0.4 {
			stay := rng.Int63n(8) // leaves within a week
			tourists = append(tourists, leasing.DeadlineClient{T: day, D: stay})
		}
	}
	in, err := leasing.NewDeadlineInstance(cfg, tourists)
	if err != nil {
		return err
	}
	fmt.Printf("%d tourists over 60 days (max patience %d days)\n\n", len(tourists), in.DMax())

	alg, err := leasing.NewDeadlineLeaser(cfg)
	if err != nil {
		return err
	}
	if err := alg.Run(in); err != nil {
		return err
	}
	if err := leasing.VerifyDeadline(in, alg.Leases()); err != nil {
		return err
	}
	fmt.Printf("online hiring:   $%.2f over %d contracts (%d tourists pre-served free)\n",
		alg.TotalCost(), len(alg.Leases()), alg.Skips())

	opt, err := leasing.DeadlineOptimal(in, 0)
	if err != nil {
		return err
	}
	fmt.Printf("offline optimum: $%.2f\n", opt)
	fmt.Printf("ratio: %.2f (theory: at most K + dmax/lmin = %.1f)\n",
		alg.TotalCost()/opt, float64(cfg.K())+float64(in.DMax())/float64(cfg.LMin()))

	// The flip side: the Proposition 5.4 tight example, where flexibility
	// backfires for ANY online strategy of this type.
	tight, err := leasing.DeadlineTightInstance(2, 64, 0.01)
	if err != nil {
		return err
	}
	talg, err := leasing.NewDeadlineLeaser(tight.Cfg)
	if err != nil {
		return err
	}
	if err := talg.Run(tight); err != nil {
		return err
	}
	topt, err := leasing.DeadlineOptimal(tight, 0)
	if err != nil {
		return err
	}
	fmt.Printf("\ntight example (Prop 5.4): online $%.2f vs OPT $%.2f — ratio %.1f ≈ dmax/lmin = %d\n",
		talg.TotalCost(), topt, talg.TotalCost()/topt, 64/tight.Cfg.LMin())
	return nil
}
