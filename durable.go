package leasing

// The durability layer of the serving stack. OpenDurableLog opens the
// segmented write-ahead log (internal/wal) a durable Engine appends to,
// and RecoverEngine rebuilds every logged tenant session into a fresh
// engine — the crash-recovery path cmd/leased runs on boot when started
// with -data-dir. Because a session is a pure function of its open spec
// and its time-ordered events, recovery never deserializes algorithm
// state: it rebuilds the algorithm from the logged wire spec (the same
// deterministic spec-to-algorithm mapping the open endpoint uses) and
// replays the logged history, so a recovered session's Result is
// byte-identical to a single-threaded Replay of that history.
// docs/DURABILITY.md (generated from internal/wal) documents the record
// format, torn-write handling, compaction and the recovery runbook.

import (
	"encoding/json"
	"fmt"

	"leasing/internal/engine"
	"leasing/internal/wal"
)

// DurableLog is the segmented, CRC-framed, fsync-batched write-ahead
// log; open one with OpenDurableLog and hand it to an Engine via
// EngineConfig.WAL (or let RecoverEngine do both).
type DurableLog = wal.Log

// DurableLogOptions shapes a DurableLog: fsync-per-acknowledgement
// (group-committed), the segment rotation threshold, and the automatic
// compaction cadence.
type DurableLogOptions = wal.Options

// DurableLogStats samples a DurableLog's counters.
type DurableLogStats = wal.Stats

// EngineWAL is the hook a durable Engine logs through; *DurableLog
// implements it.
type EngineWAL = engine.WAL

// RestoredSession is one recovered tenant session as the engine replays
// it: the leaser rebuilt from the logged spec, the logged history, and
// the sealed flag.
type RestoredSession = engine.Restored

// ErrEngineWAL wraps WAL append failures surfaced by a durable engine's
// writes; the failed operation was not applied.
var ErrEngineWAL = engine.ErrWAL

// ErrOpenSpecRequired is returned by Open on a durable engine: durable
// sessions must be opened through OpenSpec so recovery can rebuild them.
var ErrOpenSpecRequired = engine.ErrSpecRequired

// OpenDurableLog opens (or creates) the write-ahead log rooted at dir,
// truncating a torn tail and scanning the logged sessions for
// RecoverEngine.
func OpenDurableLog(dir string, opts DurableLogOptions) (*DurableLog, error) {
	return wal.Open(dir, opts)
}

// RecoverEngine starts a durable engine over log: it rebuilds every
// session the log recovered — unmarshalling each logged spec as a
// RemoteOpenRequest and building its algorithm deterministically —
// replays the logged histories, and returns the engine (with the log
// installed as its WAL) ready to serve new traffic. The int is the
// number of sessions recovered. On error the engine is closed; the log
// is the caller's to close either way.
func RecoverEngine(log *DurableLog, cfg EngineConfig) (*Engine, int, error) {
	cfg.WAL = log
	return recoverSessions(log, cfg)
}

// recoverSessions rebuilds log's recovered sessions into a fresh
// engine built from cfg as-is — cfg.WAL is the caller's choice, which
// is how RecoverEngineWAL routes a clustered node's appends through
// its replicated log while recovering from the plain one beneath it.
func recoverSessions(log *DurableLog, cfg EngineConfig) (*Engine, int, error) {
	eng := NewEngine(cfg)
	sessions := log.Recover()
	restored := make([]RestoredSession, len(sessions))
	for i, s := range sessions {
		var spec RemoteOpenRequest
		if err := json.Unmarshal(s.Spec, &spec); err != nil {
			eng.Close()
			return nil, 0, fmt.Errorf("leasing: recover %q: decode spec: %w", s.Tenant, err)
		}
		lsr, err := spec.Build()
		if err != nil {
			eng.Close()
			return nil, 0, fmt.Errorf("leasing: recover %q: build session: %w", s.Tenant, err)
		}
		restored[i] = RestoredSession{Tenant: s.Tenant, Leaser: lsr, Events: s.Events, Closed: s.Closed}
	}
	if err := eng.Restore(restored); err != nil {
		eng.Close()
		return nil, 0, err
	}
	return eng, len(restored), nil
}

// WireOpenSpec renders a RemoteOpenRequest as the canonical spec bytes
// OpenSpec logs — the same encoding the lease service logs for sessions
// opened over HTTP, so in-process and remote sessions recover
// identically.
func WireOpenSpec(req RemoteOpenRequest) ([]byte, error) {
	spec, err := json.Marshal(&req)
	if err != nil {
		return nil, fmt.Errorf("leasing: encode open spec: %w", err)
	}
	return spec, nil
}

// Compile-time proof that the wal log satisfies the engine's WAL hook.
var _ engine.WAL = (*wal.Log)(nil)
