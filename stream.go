package leasing

// The unified streaming Leaser API. The thesis presents every problem in
// this repository as one framework — demands arrive online, the algorithm
// buys item-lease triples (i, k, t) — and this file is that framework as
// the package's primary interface: every online algorithm is constructible
// as a Leaser consuming Events and producing Decisions, and the generic
// driver (Replay, Interleave) runs any of them over any demand stream with
// per-step cost curves and ratio-vs-offline tracking. The per-problem
// constructors in parking.go, setcover.go, facility.go, deadline.go and
// network.go remain available for direct, domain-typed use.

import (
	"io"
	"math/rand"

	"leasing/internal/deadline"
	"leasing/internal/facility"
	"leasing/internal/parking"
	"leasing/internal/setcover"
	"leasing/internal/steiner"
	"leasing/internal/stream"
	"leasing/internal/workload"
)

// Event is one online demand: a timestamp plus a domain payload. Build
// events with the XxxEvent constructors or the XxxEvents batch helpers.
type Event = stream.Event

// Payload is the domain-specific part of an Event; the concrete types are
// the XxxPayload aliases below.
type Payload = stream.Payload

// DayPayload marks a parking-permit demand (the event's day needs a
// lease).
type DayPayload = stream.Day

// ElementPayload is a set-multicover demand (element, multiplicity).
type ElementPayload = stream.Element

// WindowPayload is a leasing-with-deadlines demand (slack D).
type WindowPayload = stream.Window

// ElementWindowPayload is an SCLD demand (element, slack D).
type ElementWindowPayload = stream.ElementWindow

// BatchPayload is a facility-leasing step (the arriving clients).
type BatchPayload = stream.Batch

// ConnectPayload is a Steiner-tree-leasing request (terminals S, T).
type ConnectPayload = stream.Connect

// UsePayload is a reusable-resource demand (usage duration Dur).
type UsePayload = stream.Use

// Decision is a Leaser's response to one Event: the item-lease triples
// newly bought, the assignments newly made, and the incremental cost.
type Decision = stream.Decision

// CostBreakdown splits a Leaser's cumulative cost into leasing and
// service (e.g. connection) parts.
type CostBreakdown = stream.CostBreakdown

// Solution is a snapshot of everything a Leaser bought and assigned, in
// deterministic order.
type Solution = stream.Solution

// ItemLease is the triple (i, k, t): item i leased with type k from t.
// The item index is domain-specific (0 for single-resource problems, the
// set/site/edge index otherwise).
type ItemLease = stream.ItemLease

// Assignment records one service decision: the client (in arrival order)
// served by item Item under lease type K at service cost Cost.
type Assignment = stream.Assignment

// Leaser is the unified protocol implemented by every online algorithm:
// Observe consumes one demand and returns what was bought for it, Cost
// reports cumulative totals, Snapshot returns the solution so far.
type Leaser = stream.Leaser

// StreamRun is the result of Replay: one Decision and one cost-curve point
// per event, plus the final cost breakdown.
type StreamRun = stream.Run

// CurvePoint is one point of a replay's cumulative cost curve.
type CurvePoint = stream.CurvePoint

// DayEvent builds a parking-permit demand on day t.
func DayEvent(t int64) Event { return Event{Time: t, Payload: stream.Day{}} }

// ElementEvent builds a set-multicover demand: element elem arrives at t
// needing coverage by p distinct sets.
func ElementEvent(t int64, elem, p int) Event {
	return Event{Time: t, Payload: stream.Element{Elem: elem, P: p}}
}

// WindowEvent builds a leasing-with-deadlines demand servable on any day
// of [t, t+d].
func WindowEvent(t, d int64) Event {
	return Event{Time: t, Payload: stream.Window{D: d}}
}

// ElementWindowEvent builds an SCLD demand: element elem must be covered
// by a set leased over some day of [t, t+d].
func ElementWindowEvent(t int64, elem int, d int64) Event {
	return Event{Time: t, Payload: stream.ElementWindow{Elem: elem, D: d}}
}

// BatchEvent builds a facility-leasing step: the clients arriving at t.
func BatchEvent(t int64, clients ...Point) Event {
	return Event{Time: t, Payload: stream.Batch{Clients: clients}}
}

// ConnectEvent builds a Steiner-tree-leasing request connecting s and u
// at step t.
func ConnectEvent(t int64, s, u int) Event {
	return Event{Time: t, Payload: stream.Connect{S: s, T: u}}
}

// DayEvents converts a sorted demand-day stream into events.
func DayEvents(days []int64) []Event { return stream.Days(days) }

// ElementEvents converts element arrivals into events.
func ElementEvents(arrivals []ElementArrival) []Event { return stream.Elements(arrivals) }

// WindowEvents converts deadline clients into events.
func WindowEvents(clients []DeadlineClient) []Event { return stream.Windows(clients) }

// BatchEvents converts a facility timeline (batches[t] arrives at step t)
// into one event per step.
func BatchEvents(batches [][]Point) []Event { return stream.Batches(batches) }

// ConnectEvents converts Steiner requests into events.
func ConnectEvents(reqs []SteinerRequest) []Event { return steiner.Events(reqs) }

// ElementWindowEvents converts SCLD arrivals into events.
func ElementWindowEvents(arrivals []SCLDArrival) []Event { return deadline.SCLDEvents(arrivals) }

// NewParkingStream wraps any parking-permit algorithm (deterministic,
// randomized or predictive) as a unified Leaser consuming Day events.
func NewParkingStream(alg ParkingPermitAlgorithm) Leaser { return parking.NewLeaser(alg) }

// NewSetCoverStream builds the Chapter 3 randomized algorithm for inst as
// a unified Leaser consuming Element events.
func NewSetCoverStream(inst *SetCoverInstance, rng *rand.Rand) (Leaser, error) {
	alg, err := setcover.NewOnline(inst, rng, setcover.Options{})
	if err != nil {
		return nil, err
	}
	return setcover.NewLeaser(alg), nil
}

// NewFacilityStream builds the Chapter 4 primal-dual algorithm for inst as
// a unified Leaser consuming Batch events.
func NewFacilityStream(inst *FacilityInstance) (Leaser, error) {
	alg, err := facility.NewOnline(inst, facility.Options{})
	if err != nil {
		return nil, err
	}
	return facility.NewLeaser(alg), nil
}

// NewDeadlineStream builds the Chapter 5 OLD primal-dual algorithm as a
// unified Leaser consuming Window events.
func NewDeadlineStream(cfg *LeaseConfig) (Leaser, error) {
	alg, err := deadline.NewOnline(cfg)
	if err != nil {
		return nil, err
	}
	return deadline.NewLeaser(alg), nil
}

// NewSCLDStream builds the Section 5.5 randomized SCLD algorithm as a
// unified Leaser consuming ElementWindow events.
func NewSCLDStream(inst *SCLDInstance, rng *rand.Rand) (Leaser, error) {
	alg, err := deadline.NewSCLDOnline(inst, rng)
	if err != nil {
		return nil, err
	}
	return deadline.NewSCLDStream(alg), nil
}

// NewSteinerStream builds the composed Steiner-tree-leasing algorithm as a
// unified Leaser consuming Connect events.
func NewSteinerStream(inst *SteinerInstance) (Leaser, error) {
	alg, err := steiner.NewOnline(inst)
	if err != nil {
		return nil, err
	}
	return steiner.NewLeaser(alg), nil
}

// Replay feeds every event through the Leaser in order and records the
// decisions, the per-step cumulative cost curve, and the final breakdown.
// It is the one generic code path every demand stream takes — the
// experiment harness and cmd/leasesim both run on it.
func Replay(l Leaser, events []Event) (*StreamRun, error) {
	return stream.Replay(l, events)
}

// Interleave deterministically merges several event streams (each sorted
// by time) into one: ordered by time, ties broken by stream index, then
// by within-stream order.
func Interleave(streams ...[]Event) []Event { return stream.Interleave(streams...) }

// SolutionLeases projects a snapshot onto the single-resource timeline:
// the (type, start) leases of the parking-permit and deadline problems.
func SolutionLeases(sol Solution) []Lease {
	out := make([]Lease, len(sol.Leases))
	for i, il := range sol.Leases {
		out[i] = Lease{K: il.K, Start: il.Start}
	}
	return out
}

// SolutionSetLeases projects a snapshot onto set-lease triples.
func SolutionSetLeases(sol Solution) []SetLease {
	out := make([]SetLease, len(sol.Leases))
	for i, il := range sol.Leases {
		out[i] = SetLease{Set: il.Item, K: il.K, Start: il.Start}
	}
	return out
}

// SolutionFacilityLeases projects a snapshot onto facility-lease triples.
func SolutionFacilityLeases(sol Solution) []FacilityLease {
	out := make([]FacilityLease, len(sol.Leases))
	for i, il := range sol.Leases {
		out[i] = FacilityLease{Facility: il.Item, K: il.K, Start: il.Start}
	}
	return out
}

// SolutionFacilityAssignments projects a snapshot's assignments onto the
// facility domain's per-client assignment records.
func SolutionFacilityAssignments(sol Solution) []FacilityAssignment {
	out := make([]FacilityAssignment, len(sol.Assignments))
	for i, a := range sol.Assignments {
		out[i] = FacilityAssignment{Facility: a.Item, K: a.K, Dist: a.Cost}
	}
	return out
}

// Trace is a serializable demand stream, the interchange format of
// cmd/leasegen and cmd/leasesim.
type Trace = workload.Trace

// Trace kinds.
const (
	TraceKindDays     = workload.KindDays
	TraceKindDeadline = workload.KindDeadline
	TraceKindElements = workload.KindElements
)

// ReadTrace decodes and validates a trace written by WriteTrace.
func ReadTrace(r io.Reader) (*Trace, error) { return workload.ReadTrace(r) }

// WriteTrace validates and encodes a trace as one JSON object.
func WriteTrace(w io.Writer, tr *Trace) error { return workload.WriteTrace(w, tr) }

// TraceEvents converts a trace into the matching event stream.
func TraceEvents(tr *Trace) ([]Event, error) { return stream.FromTrace(tr) }
