// Package leasing is a from-scratch Go implementation of the online
// resource-leasing algorithms of Christine Markarian's thesis "Online
// Resource Leasing" (PODC 2015): the Parking Permit Problem, Set
// (Multi)Cover Leasing, Facility Leasing, and Online Leasing with
// Deadlines, together with exact offline optima, lower-bound adversaries,
// and an experiment harness that regenerates every bound in the thesis.
//
// # The model
//
// Time is a sequence of discrete steps. A resource is not bought once but
// leased: a lease configuration (LeaseConfig) declares K lease types, each
// with a duration l_k and a price c_k, where longer leases cost less per
// step but more up front. Demands arrive online; algorithms must commit to
// leases without knowing the future, and are measured by their competitive
// ratio against the offline optimum.
//
// All online algorithms operate in the interval model (thesis Def. 2.5):
// lease lengths are powers of two and a type-k lease starts at a multiple
// of l_k. RoundToIntervalModel and ExpandToGeneral implement the
// 4-competitive transformation between the general and interval models
// (thesis Lemma 2.6).
//
// # Problems
//
//   - Parking permit (Chapter 2): one resource, demands are days that need
//     a valid lease. NewDeterministicParkingPermit is O(K)-competitive;
//     NewRandomizedParkingPermit is O(log K) in expectation;
//     ParkingPermitOptimal is the exact offline DP.
//   - Set multicover leasing (Chapter 3): elements arrive and must be
//     covered by p distinct leased sets. NewSetCoverLeaser implements the
//     O(log(δK) log n)-competitive randomized algorithm.
//   - Facility leasing (Chapter 4): clients arrive in batches and connect
//     to leased facilities in a metric. NewFacilityLeaser implements the
//     (3+K)·H_lmax-competitive two-phase primal-dual algorithm.
//   - Leasing with deadlines (Chapter 5): demands may wait until their
//     deadline. NewDeadlineLeaser is Θ(K + d_max/l_min)-competitive;
//     NewSCLDLeaser handles set cover leasing with deadlines.
//
// # Reusable resources
//
// NewReusableStream extends the framework to reusable capacity: a pool
// of C units where a granted request occupies one unit for its usage
// duration and then returns it. Admission is strict first-fit — the
// lowest-indexed free unit serves, and a request finding the whole pool
// busy is rejected — so the grant sequence each unit sees is independent
// of lease state, and the per-unit parking-permit primal-dual rule
// provisions each unit K-competitively against ReusableOffline, the
// oracle that prices the identical grant sequence with exact per-unit
// lease planning. NewPredictiveReusableStream is the learning-augmented
// variant: given a believed per-step demand probability, uncovered
// grants buy the lease minimizing cost per expected served request.
// VerifyReusable checks any snapshot for exclusive unit occupation,
// lease-covered grants, and rejections only under a full pool.
//
// # The unified streaming API
//
// The thesis presents all of these as one framework — demands arrive
// online, the algorithm buys item-lease triples (i, k, t) — and the
// package exposes that framework directly: every online algorithm is
// constructible as a Leaser (NewParkingStream, NewSetCoverStream,
// NewFacilityStream, NewDeadlineStream, NewSCLDStream, NewSteinerStream,
// NewReusableStream)
// whose Observe consumes Events (a timestamp plus a domain payload) and
// returns Decisions (triples bought, assignments made, incremental cost).
// Cost reports the cumulative lease/service breakdown and Snapshot the
// current Solution for verification. The generic driver replays any
// demand stream through any Leaser (Replay) with per-event cost curves
// and ratio-vs-offline tracking, and merges multiple streams
// deterministically (Interleave). Traces written by cmd/leasegen convert
// to events via TraceEvents; cmd/leasesim and the whole experiment
// registry run on this one code path.
//
// # The multi-tenant engine
//
// NewEngine starts the sharded serving layer over the same protocol: many
// independent tenant sessions (one Leaser each) hashed across shards,
// each shard draining a batched, backpressured event queue on its own
// goroutine, with cached Cost/Snapshot reads and per-shard Metrics. Per
// tenant the engine is exactly Replay — its output is byte-identical to
// a single-threaded replay for any shard count and batch size.
// cmd/leaseload load-tests it with mixed-domain tenant traffic; see
// docs/ARCHITECTURE.md for the layering.
//
// # The lease service
//
// Serve wraps an Engine in the HTTP/JSON lease service handler — the
// network boundary cmd/leased runs as a daemon — and Dial returns the
// matching Go client. Remote tenants open sessions from a
// RemoteOpenRequest (a full instance spec; construction is
// deterministic, so the same spec and seed always rebuild the same
// algorithm), stream demands in as JSON arrays or NDJSON, and read
// costs, snapshots and recorded runs back. Backpressure surfaces as
// fail-fast 429s that the client retries transparently, resuming after
// the server's accepted count. A remote session's result is
// byte-identical to a local single-threaded Replay. The wire protocol
// lives in internal/wire and docs/API.md is generated from it;
// docs/OPERATIONS.md is the operator guide.
//
// # Durability
//
// OpenDurableLog opens the segmented, CRC-framed write-ahead log a
// durable Engine appends to (EngineConfig.WAL): every acknowledged
// OpenSpec, Submit and CloseTenant is logged before its caller learns
// it succeeded, with optional group-committed fsync. RecoverEngine rebuilds every
// logged session into a fresh engine after a crash — the algorithm is
// reconstructed deterministically from the logged spec and the logged
// history replayed, so a recovered session's Result is byte-identical
// to a single-threaded Replay of that history. Torn tail records are
// CRC-detected and truncated rather than replayed, and snapshot
// compaction reclaims closed sessions. cmd/leased exposes this as
// -data-dir/-fsync/-compact-every and cmd/leaseload -crash drills
// SIGKILL-and-recover end to end; docs/DURABILITY.md (generated from
// internal/wal) documents the format, semantics and runbook.
//
// # Experiments
//
// RunExperiment regenerates any of the twenty-two experiments E1..E22
// indexed in DESIGN.md: the core experiments cover the thesis' theorems,
// lower bounds, tight examples and ablations, while E17..E22 exercise the
// extensions the thesis leaves open (Steiner tree leasing, vertex and
// edge cover leasing, capacitated facility leasing, stochastic demand,
// and the reusable-resource pool with its learning-augmented
// provisioning rule). EXPERIMENTS.md
// records paper-predicted versus measured results; both documents are
// generated from the experiment registry by cmd/leasereport, whose -check
// mode fails when they drift from the code. The cmd/leasebench tool prints
// the same tables from the command line.
//
// Everything is stdlib-only and deterministic per seed: repeated trials
// fan out across a worker pool, and every table is byte-identical for any
// worker count.
package leasing
