package leasing

import (
	"math/rand"

	"leasing/internal/coverext"
	"leasing/internal/graph"
	"leasing/internal/steiner"
)

// Graph is a weighted undirected graph, the substrate of the network
// extensions (Steiner tree leasing, vertex/edge cover leasing).
type Graph = graph.Graph

// GraphEdge is one weighted undirected edge.
type GraphEdge = graph.Edge

// NewGraph validates an edge list over n vertices.
func NewGraph(n int, edges []GraphEdge) (*Graph, error) {
	return graph.New(n, edges)
}

// RandomConnectedGraph generates a connected graph with m edges and
// weights in [minW, maxW).
func RandomConnectedGraph(rng *rand.Rand, n, m int, minW, maxW float64) (*Graph, error) {
	return graph.RandomConnected(rng, n, m, minW, maxW)
}

// SteinerRequest is one communication demand: terminals S and T must be
// connected by leased edges at step Time.
type SteinerRequest = steiner.Request

// SteinerInstance is a SteinerTreeLeasing input.
type SteinerInstance = steiner.Instance

// SteinerLeaser is the composed online algorithm: marginal-price routing
// with a per-edge parking-permit lease manager.
type SteinerLeaser = steiner.Online

// NewSteinerInstance validates a Steiner-tree-leasing input; edge lease
// prices are weight(e) * cfg.Cost(k).
func NewSteinerInstance(g *Graph, cfg *LeaseConfig, reqs []SteinerRequest) (*SteinerInstance, error) {
	return steiner.NewInstance(g, cfg, reqs)
}

// NewSteinerLeaser returns the online algorithm for an instance.
func NewSteinerLeaser(inst *SteinerInstance) (*SteinerLeaser, error) {
	return steiner.NewOnline(inst)
}

// SteinerOfflineBaseline computes the hindsight static-route baseline with
// per-edge DP-optimal leases.
func SteinerOfflineBaseline(inst *SteinerInstance) (float64, error) {
	return steiner.OfflineTreeBaseline(inst)
}

// VerifySteiner checks a set of edge-lease triples (item = edge index)
// serves every request of the instance: at each request's step its
// terminals must be connected by edges holding an active lease. It is the
// feasibility oracle for unified-stream snapshots.
func VerifySteiner(inst *SteinerInstance, leases []ItemLease) error {
	return steiner.VerifySolution(inst, leases)
}

// VertexCoverLeasingFamily reduces VertexCoverLeasing on g to a set
// system: elements are edges, sets are vertices (δ = 2).
func VertexCoverLeasingFamily(g *Graph) (*SetFamily, error) {
	return coverext.VertexCoverFamily(g)
}

// EdgeCoverLeasingFamily reduces EdgeCoverLeasing on g to a set system:
// elements are vertices, sets are edges (δ = max degree).
func EdgeCoverLeasingFamily(g *Graph) (*SetFamily, error) {
	return coverext.EdgeCoverFamily(g)
}
