package leasing

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func apiConfig(t *testing.T) *LeaseConfig {
	t.Helper()
	cfg, err := NewLeaseConfig(
		LeaseType{Length: 1, Cost: 1},
		LeaseType{Length: 4, Cost: 2},
		LeaseType{Length: 16, Cost: 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestParkingPermitFacade(t *testing.T) {
	cfg := apiConfig(t)
	alg, err := NewDeterministicParkingPermit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	days := []int64{0, 1, 2, 3, 17}
	cost, err := RunParkingPermit(alg, days)
	if err != nil {
		t.Fatal(err)
	}
	opt, sol, err := ParkingPermitOptimal(cfg, days)
	if err != nil {
		t.Fatal(err)
	}
	if cost < opt-1e-9 {
		t.Errorf("online %v below OPT %v", cost, opt)
	}
	if len(sol) == 0 {
		t.Error("empty optimal solution")
	}
	ralg, err := NewRandomizedParkingPermit(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunParkingPermit(ralg, days); err != nil {
		t.Fatal(err)
	}
	adv, err := NewDeterministicParkingPermit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	demanded, err := ParkingPermitAdversary(cfg, adv, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(demanded) == 0 {
		t.Error("adversary issued no demands")
	}
}

func TestSetCoverFacade(t *testing.T) {
	cfg := apiConfig(t)
	fam, err := NewSetFamily(3, [][]int{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	costs := [][]float64{{1, 2, 4}, {1, 2, 4}, {1, 2, 4}}
	arrivals := []ElementArrival{{T: 0, Elem: 0, P: 2}, {T: 5, Elem: 2, P: 1}}
	inst, err := NewSetCoverInstance(fam, cfg, costs, arrivals, PerArrival)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := NewSetCoverLeaser(inst, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if err := alg.Run(); err != nil {
		t.Fatal(err)
	}
	if err := VerifySetCover(inst, alg.Bought()); err != nil {
		t.Error(err)
	}
	opt, exact, err := SetCoverOptimal(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !exact {
		t.Error("small instance not proven")
	}
	if alg.TotalCost() < opt-1e-9 {
		t.Errorf("online %v below OPT %v", alg.TotalCost(), opt)
	}
	gCost, gSol, err := SetCoverGreedy(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySetCover(inst, gSol); err != nil {
		t.Error(err)
	}
	if gCost < opt-1e-9 {
		t.Errorf("greedy %v below OPT %v", gCost, opt)
	}
}

func TestFacilityFacade(t *testing.T) {
	cfg := apiConfig(t)
	inst, err := NewFacilityInstance(cfg,
		[]Point{{X: 0, Y: 0}, {X: 10, Y: 0}},
		[][]float64{{1, 2, 5}, {1, 2, 5}},
		[][]Point{{{X: 1, Y: 0}}, {{X: 9, Y: 0}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := NewFacilityLeaser(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := alg.Run(); err != nil {
		t.Fatal(err)
	}
	leases, assigns := alg.Solution()
	cost, err := VerifyFacility(inst, leases, assigns)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost-alg.TotalCost()) > 1e-6 {
		t.Errorf("verified %v != reported %v", cost, alg.TotalCost())
	}
	opt, exact, err := FacilityOptimal(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if exact && alg.TotalCost() < opt-1e-6 {
		t.Errorf("online %v below OPT %v", alg.TotalCost(), opt)
	}
}

func TestDeadlineFacade(t *testing.T) {
	cfg := apiConfig(t)
	in, err := NewDeadlineInstance(cfg, []DeadlineClient{{T: 0, D: 5}, {T: 3, D: 2}})
	if err != nil {
		t.Fatal(err)
	}
	alg, err := NewDeadlineLeaser(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := alg.Run(in); err != nil {
		t.Fatal(err)
	}
	if err := VerifyDeadline(in, alg.Leases()); err != nil {
		t.Error(err)
	}
	opt, err := DeadlineOptimal(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if alg.TotalCost() < opt-1e-9 {
		t.Errorf("online %v below OPT %v", alg.TotalCost(), opt)
	}
	tight, err := DeadlineTightInstance(2, 16, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(tight.Clients) == 0 {
		t.Error("tight instance empty")
	}
}

func TestSCLDFacade(t *testing.T) {
	cfg := apiConfig(t)
	fam, err := NewSetFamily(2, [][]int{{0, 1}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewSCLDInstance(fam, cfg, [][]float64{{1, 2, 4}, {1, 2, 4}},
		[]SCLDArrival{{T: 0, Elem: 0, D: 3}, {T: 4, Elem: 1, D: 0}})
	if err != nil {
		t.Fatal(err)
	}
	alg, err := NewSCLDLeaser(inst, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if err := alg.Run(); err != nil {
		t.Fatal(err)
	}
	opt, exact, err := SCLDOptimal(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !exact {
		t.Error("tiny SCLD not proven")
	}
	if alg.TotalCost() < opt-1e-9 {
		t.Errorf("online %v below OPT %v", alg.TotalCost(), opt)
	}
}

func TestExperimentFacade(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 22 {
		t.Fatalf("got %d experiment ids", len(ids))
	}
	var buf bytes.Buffer
	if err := RunExperiment("E1", ExperimentConfig{Quick: true, Seed: 1}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "E1") {
		t.Error("experiment output missing id")
	}
	if err := RunExperiment("nope", ExperimentConfig{Quick: true}, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
	for _, e := range Experiments() {
		if e.ID == "" || e.Paper == "" || e.Summary == "" {
			t.Errorf("incomplete experiment metadata: %+v", e)
		}
	}
}

func TestConfigConstructors(t *testing.T) {
	if cfg := PowerLeaseConfig(3, 4, 0.5); cfg.K() != 3 {
		t.Error("PowerLeaseConfig wrong K")
	}
	if cfg := DoublingLeaseConfig(4, 1, 1.8); cfg.K() != 4 {
		t.Error("DoublingLeaseConfig wrong K")
	}
	st := NewLeaseStore(PowerLeaseConfig(2, 4, 0.5))
	if !st.Buy(Lease{K: 0, Start: 0}) {
		t.Error("store Buy failed")
	}
}

func TestNetworkFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, err := RandomConnectedGraph(rng, 8, 14, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := apiConfig(t)
	reqs := []SteinerRequest{{Time: 0, S: 0, T: 5}, {Time: 2, S: 1, T: 6}}
	inst, err := NewSteinerInstance(g, cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := NewSteinerLeaser(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := alg.Run(); err != nil {
		t.Fatal(err)
	}
	if err := alg.VerifyFeasible(); err != nil {
		t.Error(err)
	}
	baseline, err := SteinerOfflineBaseline(inst)
	if err != nil {
		t.Fatal(err)
	}
	if alg.TotalCost() <= 0 || baseline <= 0 {
		t.Errorf("costs must be positive: online %v baseline %v", alg.TotalCost(), baseline)
	}
	vc, err := VertexCoverLeasingFamily(g)
	if err != nil {
		t.Fatal(err)
	}
	if vc.Delta() != 2 {
		t.Errorf("vertex cover family delta = %d, want 2", vc.Delta())
	}
	ec, err := EdgeCoverLeasingFamily(g)
	if err != nil {
		t.Fatal(err)
	}
	if ec.N() != g.N() {
		t.Errorf("edge cover universe = %d, want %d", ec.N(), g.N())
	}
	if _, err := NewGraph(2, []GraphEdge{{U: 0, V: 1, Weight: 1}}); err != nil {
		t.Errorf("NewGraph: %v", err)
	}
}

func TestCapacitatedFacade(t *testing.T) {
	cfg := apiConfig(t)
	inst, err := NewFacilityInstance(cfg,
		[]Point{{X: 0, Y: 0}, {X: 5, Y: 0}},
		[][]float64{{1, 2, 5}, {1, 2, 5}},
		[][]Point{{{X: 0, Y: 0}, {X: 0, Y: 1}, {X: 5, Y: 0}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	cost, leases, assigns, err := CapacitatedFacilityGreedy(inst, 2, BestRateType)
	if err != nil {
		t.Fatal(err)
	}
	vCost, err := VerifyFacilityCapacitated(inst, leases, assigns, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost-vCost) > 1e-6 {
		t.Errorf("cost %v != verified %v", cost, vCost)
	}
	opt, exact, err := FacilityOptimalCapacitated(inst, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if exact && cost < opt-1e-6 {
		t.Errorf("greedy %v below capacitated OPT %v", cost, opt)
	}
}

func TestPredictiveFacade(t *testing.T) {
	cfg := apiConfig(t)
	alg, err := NewPredictiveParkingPermit(cfg, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunParkingPermit(alg, []int64{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if alg.TotalCost() <= 0 {
		t.Error("predictive accumulated no cost")
	}
	if _, err := NewPredictiveParkingPermit(cfg, 0); err == nil {
		t.Error("p=0 accepted")
	}
}
