package leasing

import (
	"leasing/internal/facility"
	"leasing/internal/metric"
)

// Point is a location in the plane (the metric space of facility leasing).
type Point = metric.Point

// FacilityInstance is a facility-leasing input: sites with per-type lease
// costs and a timeline of client batches.
type FacilityInstance = facility.Instance

// FacilityLease is the triple (facility, lease type, start).
type FacilityLease = facility.FacilityLease

// FacilityAssignment records where one client was connected.
type FacilityAssignment = facility.Assignment

// FacilityLeaser is the two-phase primal-dual online algorithm of thesis
// Chapter 4.
type FacilityLeaser = facility.Online

// NewFacilityInstance validates a facility-leasing input. facCosts[i][k] is
// the price of leasing site i with type k; batches[t] lists the clients
// arriving at step t.
func NewFacilityInstance(cfg *LeaseConfig, sites []Point, facCosts [][]float64, batches [][]Point) (*FacilityInstance, error) {
	return facility.NewInstance(cfg, sites, facCosts, batches)
}

// NewFacilityLeaser returns the (3+K)·H_lmax-competitive dual-fitting
// algorithm (thesis Section 4.3, Theorem 4.5).
func NewFacilityLeaser(inst *FacilityInstance) (*FacilityLeaser, error) {
	return facility.NewOnline(inst, facility.Options{})
}

// FacilityOptimal computes the exact offline optimum (lease plus
// connection cost) by branch and bound; exact reports whether it was
// proven within the node limit (<= 0 for the default).
func FacilityOptimal(inst *FacilityInstance, nodeLimit int) (cost float64, exact bool, err error) {
	res, err := facility.Optimal(inst, nodeLimit)
	if err != nil {
		return 0, false, err
	}
	return res.Cost, res.Exact, nil
}

// VerifyFacility checks each client is assigned to a facility leased over
// its arrival step and returns the recomputed total cost.
func VerifyFacility(inst *FacilityInstance, leases []FacilityLease, assigns []FacilityAssignment) (float64, error) {
	return facility.VerifySolution(inst, leases, assigns)
}

// Capacitated facility leasing (the Chapter 4 outlook): a facility serves
// at most `capacity` clients per time step.

// FacilityTypePolicy selects the lease type the capacitated greedy buys.
type FacilityTypePolicy = facility.TypePolicy

// Capacitated greedy lease-type policies.
const (
	// ShortestType rents the shortest lease on every opening.
	ShortestType = facility.ShortestType
	// BestRateType commits to the lease with the lowest per-step price.
	BestRateType = facility.BestRateType
)

// CapacitatedFacilityGreedy serves clients online under a per-step
// facility capacity, returning the cost and the solution.
func CapacitatedFacilityGreedy(inst *FacilityInstance, capacity int, policy FacilityTypePolicy) (float64, []FacilityLease, []FacilityAssignment, error) {
	return facility.CapacitatedGreedy(inst, capacity, policy)
}

// FacilityOptimalCapacitated computes the exact capacitated offline
// optimum.
func FacilityOptimalCapacitated(inst *FacilityInstance, capacity, nodeLimit int) (cost float64, exact bool, err error) {
	res, err := facility.OptimalCapacitated(inst, capacity, nodeLimit)
	if err != nil {
		return 0, false, err
	}
	return res.Cost, res.Exact, nil
}

// VerifyFacilityCapacitated verifies a capacitated solution (assignment
// coverage plus per-step facility capacities) and returns its cost.
func VerifyFacilityCapacitated(inst *FacilityInstance, leases []FacilityLease, assigns []FacilityAssignment, capacity int) (float64, error) {
	return facility.VerifyCapacitated(inst, leases, assigns, capacity)
}
