package leasing

// The cluster face of the library, re-exported for cmd/leased and
// cmd/leaseload the way durable.go re-exports the durability layer.
// A clustered deployment is N identical daemons sharing one peer list:
// each builds the same consistent-hash ring (internal/cluster), serves
// the tenants the ring places on it, 307-redirects the rest, and ships
// every WAL record it appends to the tenant's replica — the next
// distinct node clockwise on the ring, exactly where the tenant lands
// if its owner is removed. Killing a node therefore fails its tenants
// over onto replicas already holding their full logged history, and
// the recovered state is byte-identical to an uninterrupted replay.
// docs/CLUSTER.md (generated from internal/cluster) documents
// placement, the shipping contract and the failover runbook.

import (
	"leasing/internal/client"
	"leasing/internal/cluster"
	"leasing/internal/server"
)

// ClusterRing is the bounded-load consistent-hash ring every node and
// cluster client builds from the shared peer list.
type ClusterRing = cluster.Ring

// NewClusterRing builds the ring over the peer list with the default
// vnode count — the same ring daemons and clients build, exposed for
// placement introspection and capacity planning.
func NewClusterRing(peers []string) (*ClusterRing, error) {
	return cluster.New(peers, 0)
}

// ClusterShipper streams WAL records to each tenant's replica in the
// background; build one with NewClusterShipper and wrap it and the
// node's own log into a ReplicatedDurableLog.
type ClusterShipper = cluster.Shipper

// ClusterShipperOptions shapes a ClusterShipper: auth token, HTTP
// client, queue depth, batch size and retry policy.
type ClusterShipperOptions = cluster.ShipperOptions

// ClusterShipperStats samples a ClusterShipper's counters.
type ClusterShipperStats = cluster.ShipperStats

// NewClusterShipper builds the shipper for the node at self, which
// must appear in peers. Close it after the engine has drained so every
// acknowledged record reaches its replica.
func NewClusterShipper(self string, peers []string, opts ClusterShipperOptions) (*ClusterShipper, error) {
	return cluster.NewShipper(self, peers, opts)
}

// ReplicatedDurableLog is an EngineWAL that appends to the node's own
// DurableLog and ships each appended record to the tenant's replica.
type ReplicatedDurableLog = cluster.ReplicatedLog

// ReplicateDurableLog wraps a node's own log with a shipper; hand the
// result to RecoverEngineWAL and LeaseClusterConfig.WAL.
func ReplicateDurableLog(log *DurableLog, sh *ClusterShipper) *ReplicatedDurableLog {
	return cluster.NewReplicatedLog(log, sh)
}

// LeaseClusterConfig enables cluster mode on a lease server: placement
// redirects plus the replication ingest and failover activation
// endpoints. Set it as LeaseServerConfig.Cluster.
type LeaseClusterConfig = server.ClusterConfig

// RemoteCluster is the cluster-aware client: it routes each tenant to
// its ring owner, follows redirects on a stale member list, drives the
// MarkDown/Activate failover step, and resumes ingestion exactly where
// the (possibly new) owner left off.
type RemoteCluster = client.Cluster

// DialCluster builds a RemoteCluster over the peer list the daemons
// were started with.
func DialCluster(peers []string, opts RemoteClientOptions) (*RemoteCluster, error) {
	return client.NewCluster(peers, opts)
}

// RecoverEngineWAL is RecoverEngine with the engine's WAL decoupled
// from the recovery source: sessions are rebuilt from log, but the
// engine appends (and an activation pre-logs) through w — for a
// clustered node, the ReplicatedDurableLog wrapping that same log.
// Recovery itself never re-ships: restored sessions replay without
// logging, so a reboot does not re-send history the replicas already
// hold.
func RecoverEngineWAL(log *DurableLog, w EngineWAL, cfg EngineConfig) (*Engine, int, error) {
	cfg.WAL = w
	return recoverSessions(log, cfg)
}
