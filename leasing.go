package leasing

import (
	"io"

	"leasing/internal/experiments"
	"leasing/internal/lease"
)

// LeaseType is one lease type: a duration in time steps and a price.
type LeaseType = lease.Type

// LeaseConfig is a validated, length-ordered collection of lease types.
type LeaseConfig = lease.Config

// Lease identifies a concrete lease: a type index and a start step.
type Lease = lease.Lease

// LeaseStore is a purchase set with cost accounting over one configuration.
type LeaseStore = lease.Store

// NewLeaseConfig validates and builds a lease configuration from types
// with strictly increasing lengths and positive costs.
func NewLeaseConfig(types ...LeaseType) (*LeaseConfig, error) {
	return lease.NewConfig(types...)
}

// PowerLeaseConfig builds K interval-model types with lengths base^k and
// costs length^gamma (0 < gamma < 1 yields an economy of scale).
func PowerLeaseConfig(k int, base int64, gamma float64) *LeaseConfig {
	return lease.PowerConfig(k, base, gamma)
}

// DoublingLeaseConfig builds K types with lengths 2^k and costs
// costBase*growth^k.
func DoublingLeaseConfig(k int, costBase, growth float64) *LeaseConfig {
	return lease.DoublingConfig(k, costBase, growth)
}

// NewLeaseStore returns an empty purchase store over cfg.
func NewLeaseStore(cfg *LeaseConfig) *LeaseStore { return lease.NewStore(cfg) }

// ExperimentConfig tunes RunExperiment.
type ExperimentConfig struct {
	// Quick shrinks sweeps and trial counts for smoke runs.
	Quick bool
	// Seed makes the run reproducible.
	Seed int64
	// Workers sets the trial-engine worker count; <= 0 selects GOMAXPROCS.
	// Results are identical for every worker count.
	Workers int
}

func (cfg ExperimentConfig) internal() experiments.Config {
	return experiments.Config{Quick: cfg.Quick, Seed: cfg.Seed, Workers: cfg.Workers}
}

// RunExperiment regenerates one thesis experiment (IDs E1..E22; see
// DESIGN.md for the index) and prints its table to w.
func RunExperiment(id string, cfg ExperimentConfig, w io.Writer) error {
	tb, err := experiments.Run(id, cfg.internal())
	if err != nil {
		return err
	}
	return tb.Fprint(w)
}

// RunAllExperiments regenerates every experiment in order.
func RunAllExperiments(cfg ExperimentConfig, w io.Writer) error {
	return experiments.RunAll(cfg.internal(), w)
}

// ExperimentIDs lists the available experiment IDs in order.
func ExperimentIDs() []string { return experiments.IDs() }

// Experiment describes one experiment for listings: the thesis artifact it
// regenerates, the chapter it comes from, and the paper-predicted bound
// its measured table is compared against in EXPERIMENTS.md.
type Experiment struct {
	ID        string
	Paper     string
	Chapter   string
	Predicted string
	Summary   string
}

// Experiments returns metadata for every registered experiment.
func Experiments() []Experiment {
	infos := experiments.List()
	out := make([]Experiment, len(infos))
	for i, in := range infos {
		out[i] = Experiment{ID: in.ID, Paper: in.Paper, Chapter: in.Chapter, Predicted: in.Predicted, Summary: in.Summary}
	}
	return out
}
