package leasing_test

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"

	"leasing"
)

// Example_parkingPermit runs the deterministic parking-permit algorithm on
// a fixed rainy-day stream and compares it with the exact offline optimum.
func Example_parkingPermit() {
	cfg, err := leasing.NewLeaseConfig(
		leasing.LeaseType{Length: 1, Cost: 1},
		leasing.LeaseType{Length: 4, Cost: 2.5},
		leasing.LeaseType{Length: 16, Cost: 6},
	)
	if err != nil {
		fmt.Println("config:", err)
		return
	}
	rainy := []int64{0, 1, 2, 3, 9, 10, 11, 12}
	alg, err := leasing.NewDeterministicParkingPermit(cfg)
	if err != nil {
		fmt.Println("alg:", err)
		return
	}
	online, err := leasing.RunParkingPermit(alg, rainy)
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	opt, _, err := leasing.ParkingPermitOptimal(cfg, rainy)
	if err != nil {
		fmt.Println("opt:", err)
		return
	}
	fmt.Printf("online $%.2f, offline $%.2f\n", online, opt)
	// Output:
	// online $16.00, offline $6.00
}

// Example_deadlines serves flexible demands: the second client's window
// contains the first one's deadline day, so it is served for free.
func Example_deadlines() {
	cfg, err := leasing.NewLeaseConfig(
		leasing.LeaseType{Length: 2, Cost: 1},
		leasing.LeaseType{Length: 16, Cost: 4},
	)
	if err != nil {
		fmt.Println("config:", err)
		return
	}
	alg, err := leasing.NewDeadlineLeaser(cfg)
	if err != nil {
		fmt.Println("alg:", err)
		return
	}
	if err := alg.Arrive(0, 6); err != nil { // window [0, 6]
		fmt.Println("arrive:", err)
		return
	}
	if err := alg.Arrive(4, 5); err != nil { // window [4, 9] contains day 6
		fmt.Println("arrive:", err)
		return
	}
	fmt.Printf("cost $%.2f, %d clients pre-served\n", alg.TotalCost(), alg.Skips())
	// Output:
	// cost $2.00, 1 clients pre-served
}

// Example_setCoverLeasing leases sets online to cover arriving elements.
func Example_setCoverLeasing() {
	cfg, err := leasing.NewLeaseConfig(
		leasing.LeaseType{Length: 4, Cost: 2},
		leasing.LeaseType{Length: 16, Cost: 5},
	)
	if err != nil {
		fmt.Println("config:", err)
		return
	}
	fam, err := leasing.NewSetFamily(3, [][]int{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		fmt.Println("family:", err)
		return
	}
	costs := [][]float64{{2, 5}, {2, 5}, {2, 5}}
	arrivals := []leasing.ElementArrival{
		{T: 0, Elem: 0, P: 1},
		{T: 1, Elem: 2, P: 2},
	}
	inst, err := leasing.NewSetCoverInstance(fam, cfg, costs, arrivals, leasing.PerArrival)
	if err != nil {
		fmt.Println("instance:", err)
		return
	}
	alg, err := leasing.NewSetCoverLeaser(inst, rand.New(rand.NewSource(7)))
	if err != nil {
		fmt.Println("alg:", err)
		return
	}
	if err := alg.Run(); err != nil {
		fmt.Println("run:", err)
		return
	}
	if err := leasing.VerifySetCover(inst, alg.Bought()); err != nil {
		fmt.Println("verify:", err)
		return
	}
	fmt.Println("all demands covered by distinct leased sets")
	// Output:
	// all demands covered by distinct leased sets
}

// Example_engine serves two tenants concurrently through the sharded
// multi-tenant engine: each tenant's session is an independent Leaser,
// events are submitted singly or in batches, and the cached Cost and
// Snapshot reads become current after Flush. Per tenant the engine is
// deterministic — its output is identical to a single-threaded Replay of
// that tenant's events.
func Example_engine() {
	cfg, err := leasing.NewLeaseConfig(
		leasing.LeaseType{Length: 1, Cost: 1},
		leasing.LeaseType{Length: 4, Cost: 2.5},
		leasing.LeaseType{Length: 16, Cost: 6},
	)
	if err != nil {
		fmt.Println("config:", err)
		return
	}
	eng := leasing.NewEngine(leasing.EngineConfig{Shards: 4, BatchSize: 8})
	defer eng.Close()

	for _, tenant := range []string{"acme", "globex"} {
		alg, err := leasing.NewDeterministicParkingPermit(cfg)
		if err != nil {
			fmt.Println("alg:", err)
			return
		}
		if err := eng.Open(tenant, leasing.NewParkingStream(alg)); err != nil {
			fmt.Println("open:", err)
			return
		}
	}
	if err := eng.Submit("acme", leasing.DayEvent(0)); err != nil {
		fmt.Println("submit:", err)
		return
	}
	if err := eng.SubmitBatch("acme", leasing.DayEvents([]int64{1, 2, 3})); err != nil {
		fmt.Println("submit:", err)
		return
	}
	if err := eng.SubmitBatch("globex", leasing.DayEvents([]int64{0, 9, 10})); err != nil {
		fmt.Println("submit:", err)
		return
	}
	if err := eng.Flush(); err != nil {
		fmt.Println("flush:", err)
		return
	}

	acme, err := eng.Cost("acme")
	if err != nil {
		fmt.Println("cost:", err)
		return
	}
	sol, err := eng.Snapshot("globex")
	if err != nil {
		fmt.Println("snapshot:", err)
		return
	}
	globex, err := eng.Cost("globex")
	if err != nil {
		fmt.Println("cost:", err)
		return
	}
	fmt.Printf("acme: $%.2f for 4 demands\n", acme.Total())
	fmt.Printf("globex: $%.2f, %d leases held\n", globex.Total(), len(sol.Leases))
	// Output:
	// acme: $4.50 for 4 demands
	// globex: $3.00, 3 leases held
}

// Example_remoteSession drives a session through the lease service over
// HTTP: Serve wraps an engine as the service handler, Dial returns the
// client, and a remote tenant opens a parking-permit session from a
// wire spec, streams demands in, flushes, reads its cost, and closes.
// The remote session's cost is exactly what an in-process run produces.
func Example_remoteSession() {
	cfg, err := leasing.NewLeaseConfig(
		leasing.LeaseType{Length: 1, Cost: 1},
		leasing.LeaseType{Length: 4, Cost: 2.5},
		leasing.LeaseType{Length: 16, Cost: 6},
	)
	if err != nil {
		fmt.Println("config:", err)
		return
	}
	eng := leasing.NewEngine(leasing.EngineConfig{Shards: 4})
	defer eng.Close()
	srv := httptest.NewServer(leasing.Serve(eng, leasing.LeaseServerConfig{}))
	defer srv.Close()

	ctx := context.Background()
	cli := leasing.Dial(srv.URL, leasing.RemoteClientOptions{})
	if err := cli.Open(ctx, "acme", leasing.RemoteOpenRequest{
		Domain: "parking",
		Types:  leasing.WireLeaseTypes(cfg),
	}); err != nil {
		fmt.Println("open:", err)
		return
	}
	events, err := leasing.WireEvents(leasing.DayEvents([]int64{0, 1, 2, 3}))
	if err != nil {
		fmt.Println("events:", err)
		return
	}
	n, err := cli.Submit(ctx, "acme", events)
	if err != nil {
		fmt.Println("submit:", err)
		return
	}
	if err := cli.Flush(ctx, "acme"); err != nil {
		fmt.Println("flush:", err)
		return
	}
	cost, err := cli.Cost(ctx, "acme")
	if err != nil {
		fmt.Println("cost:", err)
		return
	}
	closed, err := cli.Close(ctx, "acme")
	if err != nil {
		fmt.Println("close:", err)
		return
	}
	fmt.Printf("submitted %d demands, cost $%.2f, closed after %d events\n",
		n, cost.Total, closed.Events)
	// Output:
	// submitted 4 demands, cost $4.50, closed after 4 events
}

// Example_unifiedStream drives two interleaved demand streams through the
// unified streaming Leaser API: every domain speaks the same
// Observe(Event) -> Decision protocol, and one generic Replay produces
// the decisions, the cost curve and the final cost.
func Example_unifiedStream() {
	cfg, err := leasing.NewLeaseConfig(
		leasing.LeaseType{Length: 1, Cost: 1},
		leasing.LeaseType{Length: 4, Cost: 2.5},
		leasing.LeaseType{Length: 16, Cost: 6},
	)
	if err != nil {
		fmt.Println("config:", err)
		return
	}
	alg, err := leasing.NewDeterministicParkingPermit(cfg)
	if err != nil {
		fmt.Println("alg:", err)
		return
	}
	lsr := leasing.NewParkingStream(alg)
	weekdays := leasing.DayEvents([]int64{0, 1, 2, 3})
	weekends := leasing.DayEvents([]int64{2, 9, 10})
	run, err := leasing.Replay(lsr, leasing.Interleave(weekdays, weekends))
	if err != nil {
		fmt.Println("replay:", err)
		return
	}
	sol := lsr.Snapshot()
	fmt.Printf("events %d, leases bought %d, cost $%.2f\n",
		len(run.Decisions), len(sol.Leases), run.Total())
	// Output:
	// events 7, leases bought 5, cost $6.50
}
