package leasing_test

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"

	"leasing"
)

// Example_parkingPermit runs the deterministic parking-permit algorithm on
// a fixed rainy-day stream and compares it with the exact offline optimum.
func Example_parkingPermit() {
	cfg, err := leasing.NewLeaseConfig(
		leasing.LeaseType{Length: 1, Cost: 1},
		leasing.LeaseType{Length: 4, Cost: 2.5},
		leasing.LeaseType{Length: 16, Cost: 6},
	)
	if err != nil {
		fmt.Println("config:", err)
		return
	}
	rainy := []int64{0, 1, 2, 3, 9, 10, 11, 12}
	alg, err := leasing.NewDeterministicParkingPermit(cfg)
	if err != nil {
		fmt.Println("alg:", err)
		return
	}
	online, err := leasing.RunParkingPermit(alg, rainy)
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	opt, _, err := leasing.ParkingPermitOptimal(cfg, rainy)
	if err != nil {
		fmt.Println("opt:", err)
		return
	}
	fmt.Printf("online $%.2f, offline $%.2f\n", online, opt)
	// Output:
	// online $16.00, offline $6.00
}

// Example_deadlines serves flexible demands: the second client's window
// contains the first one's deadline day, so it is served for free.
func Example_deadlines() {
	cfg, err := leasing.NewLeaseConfig(
		leasing.LeaseType{Length: 2, Cost: 1},
		leasing.LeaseType{Length: 16, Cost: 4},
	)
	if err != nil {
		fmt.Println("config:", err)
		return
	}
	alg, err := leasing.NewDeadlineLeaser(cfg)
	if err != nil {
		fmt.Println("alg:", err)
		return
	}
	if err := alg.Arrive(0, 6); err != nil { // window [0, 6]
		fmt.Println("arrive:", err)
		return
	}
	if err := alg.Arrive(4, 5); err != nil { // window [4, 9] contains day 6
		fmt.Println("arrive:", err)
		return
	}
	fmt.Printf("cost $%.2f, %d clients pre-served\n", alg.TotalCost(), alg.Skips())
	// Output:
	// cost $2.00, 1 clients pre-served
}

// Example_setCoverLeasing leases sets online to cover arriving elements.
func Example_setCoverLeasing() {
	cfg, err := leasing.NewLeaseConfig(
		leasing.LeaseType{Length: 4, Cost: 2},
		leasing.LeaseType{Length: 16, Cost: 5},
	)
	if err != nil {
		fmt.Println("config:", err)
		return
	}
	fam, err := leasing.NewSetFamily(3, [][]int{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		fmt.Println("family:", err)
		return
	}
	costs := [][]float64{{2, 5}, {2, 5}, {2, 5}}
	arrivals := []leasing.ElementArrival{
		{T: 0, Elem: 0, P: 1},
		{T: 1, Elem: 2, P: 2},
	}
	inst, err := leasing.NewSetCoverInstance(fam, cfg, costs, arrivals, leasing.PerArrival)
	if err != nil {
		fmt.Println("instance:", err)
		return
	}
	alg, err := leasing.NewSetCoverLeaser(inst, rand.New(rand.NewSource(7)))
	if err != nil {
		fmt.Println("alg:", err)
		return
	}
	if err := alg.Run(); err != nil {
		fmt.Println("run:", err)
		return
	}
	if err := leasing.VerifySetCover(inst, alg.Bought()); err != nil {
		fmt.Println("verify:", err)
		return
	}
	fmt.Println("all demands covered by distinct leased sets")
	// Output:
	// all demands covered by distinct leased sets
}

// Example_engine serves two tenants concurrently through the sharded
// multi-tenant engine: each tenant's session is an independent Leaser,
// events are submitted singly or in batches, and the cached Cost and
// Snapshot reads become current after Flush. Per tenant the engine is
// deterministic — its output is identical to a single-threaded Replay of
// that tenant's events.
func Example_engine() {
	cfg, err := leasing.NewLeaseConfig(
		leasing.LeaseType{Length: 1, Cost: 1},
		leasing.LeaseType{Length: 4, Cost: 2.5},
		leasing.LeaseType{Length: 16, Cost: 6},
	)
	if err != nil {
		fmt.Println("config:", err)
		return
	}
	eng := leasing.NewEngine(leasing.EngineConfig{Shards: 4, BatchSize: 8})
	defer eng.Close()

	for _, tenant := range []string{"acme", "globex"} {
		alg, err := leasing.NewDeterministicParkingPermit(cfg)
		if err != nil {
			fmt.Println("alg:", err)
			return
		}
		if err := eng.Open(tenant, leasing.NewParkingStream(alg)); err != nil {
			fmt.Println("open:", err)
			return
		}
	}
	if err := eng.Submit("acme", leasing.DayEvent(0)); err != nil {
		fmt.Println("submit:", err)
		return
	}
	if err := eng.SubmitBatch("acme", leasing.DayEvents([]int64{1, 2, 3})); err != nil {
		fmt.Println("submit:", err)
		return
	}
	if err := eng.SubmitBatch("globex", leasing.DayEvents([]int64{0, 9, 10})); err != nil {
		fmt.Println("submit:", err)
		return
	}
	if err := eng.Flush(); err != nil {
		fmt.Println("flush:", err)
		return
	}

	acme, err := eng.Cost("acme")
	if err != nil {
		fmt.Println("cost:", err)
		return
	}
	sol, err := eng.Snapshot("globex")
	if err != nil {
		fmt.Println("snapshot:", err)
		return
	}
	globex, err := eng.Cost("globex")
	if err != nil {
		fmt.Println("cost:", err)
		return
	}
	fmt.Printf("acme: $%.2f for 4 demands\n", acme.Total())
	fmt.Printf("globex: $%.2f, %d leases held\n", globex.Total(), len(sol.Leases))
	// Output:
	// acme: $4.50 for 4 demands
	// globex: $3.00, 3 leases held
}

// Example_recoveredSession is the durability round trip: a session is
// opened on a write-ahead-logged engine from its spec, demands are
// submitted, and the process "crashes" (the engine is dropped). A
// second engine recovered from the same directory serves the identical
// session — same cost, same recorded result as a single-threaded
// Replay of the logged history — and keeps accepting demands where the
// first life stopped.
func Example_recoveredSession() {
	dir, err := os.MkdirTemp("", "leasing-example-wal-*")
	if err != nil {
		fmt.Println("tempdir:", err)
		return
	}
	defer os.RemoveAll(dir)

	cfg, err := leasing.NewLeaseConfig(
		leasing.LeaseType{Length: 1, Cost: 1},
		leasing.LeaseType{Length: 4, Cost: 2.5},
		leasing.LeaseType{Length: 16, Cost: 6},
	)
	if err != nil {
		fmt.Println("config:", err)
		return
	}
	spec := leasing.RemoteOpenRequest{Domain: "parking", Types: leasing.WireLeaseTypes(cfg)}
	specJSON, err := leasing.WireOpenSpec(spec)
	if err != nil {
		fmt.Println("spec:", err)
		return
	}

	// First life: a durable engine logs the open and every submit.
	wlog, err := leasing.OpenDurableLog(dir, leasing.DurableLogOptions{})
	if err != nil {
		fmt.Println("wal:", err)
		return
	}
	eng := leasing.NewEngine(leasing.EngineConfig{Shards: 4, RecordRuns: true, WAL: wlog})
	lsr, err := spec.Build()
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	if err := eng.OpenSpec("acme", lsr, specJSON); err != nil {
		fmt.Println("open:", err)
		return
	}
	if err := eng.SubmitBatch("acme", leasing.DayEvents([]int64{0, 1, 2, 3})); err != nil {
		fmt.Println("submit:", err)
		return
	}
	if err := eng.Flush(); err != nil {
		fmt.Println("flush:", err)
		return
	}
	before, err := eng.Cost("acme")
	if err != nil {
		fmt.Println("cost:", err)
		return
	}
	eng.Close()
	wlog.Close() // the "crash": nothing survives but the data dir

	// Second life: recover every logged session from the directory.
	wlog2, err := leasing.OpenDurableLog(dir, leasing.DurableLogOptions{})
	if err != nil {
		fmt.Println("wal:", err)
		return
	}
	defer wlog2.Close()
	eng2, recovered, err := leasing.RecoverEngine(wlog2, leasing.EngineConfig{Shards: 2, RecordRuns: true})
	if err != nil {
		fmt.Println("recover:", err)
		return
	}
	defer eng2.Close()
	after, err := eng2.Cost("acme")
	if err != nil {
		fmt.Println("cost:", err)
		return
	}

	// The recovered result is byte-identical to a Replay of the logged
	// history, and the session accepts new demands where it left off.
	run, err := eng2.Result("acme")
	if err != nil {
		fmt.Println("result:", err)
		return
	}
	ref, err := spec.Build()
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	want, err := leasing.Replay(ref, leasing.DayEvents([]int64{0, 1, 2, 3}))
	if err != nil {
		fmt.Println("replay:", err)
		return
	}
	if err := eng2.Submit("acme", leasing.DayEvent(9)); err != nil {
		fmt.Println("submit:", err)
		return
	}
	if err := eng2.Flush(); err != nil {
		fmt.Println("flush:", err)
		return
	}
	resumed, err := eng2.Events("acme")
	if err != nil {
		fmt.Println("events:", err)
		return
	}
	fmt.Printf("recovered %d session(s): cost $%.2f before crash, $%.2f after recovery\n",
		recovered, before.Total(), after.Total())
	fmt.Printf("recovered result identical to Replay: %v\n",
		fmt.Sprintf("%#v", run) == fmt.Sprintf("%#v", want))
	fmt.Printf("resumed to %d events\n", resumed)
	// Output:
	// recovered 1 session(s): cost $4.50 before crash, $4.50 after recovery
	// recovered result identical to Replay: true
	// resumed to 5 events
}

// Example_remoteSession drives a session through the lease service over
// HTTP: Serve wraps an engine as the service handler, Dial returns the
// client, and a remote tenant opens a parking-permit session from a
// wire spec, streams demands in, flushes, reads its cost, and closes.
// The remote session's cost is exactly what an in-process run produces.
func Example_remoteSession() {
	cfg, err := leasing.NewLeaseConfig(
		leasing.LeaseType{Length: 1, Cost: 1},
		leasing.LeaseType{Length: 4, Cost: 2.5},
		leasing.LeaseType{Length: 16, Cost: 6},
	)
	if err != nil {
		fmt.Println("config:", err)
		return
	}
	eng := leasing.NewEngine(leasing.EngineConfig{Shards: 4})
	defer eng.Close()
	srv := httptest.NewServer(leasing.Serve(eng, leasing.LeaseServerConfig{}))
	defer srv.Close()

	ctx := context.Background()
	cli := leasing.Dial(srv.URL, leasing.RemoteClientOptions{})
	if err := cli.Open(ctx, "acme", leasing.RemoteOpenRequest{
		Domain: "parking",
		Types:  leasing.WireLeaseTypes(cfg),
	}); err != nil {
		fmt.Println("open:", err)
		return
	}
	events, err := leasing.WireEvents(leasing.DayEvents([]int64{0, 1, 2, 3}))
	if err != nil {
		fmt.Println("events:", err)
		return
	}
	n, err := cli.Submit(ctx, "acme", events)
	if err != nil {
		fmt.Println("submit:", err)
		return
	}
	if err := cli.Flush(ctx, "acme"); err != nil {
		fmt.Println("flush:", err)
		return
	}
	cost, err := cli.Cost(ctx, "acme")
	if err != nil {
		fmt.Println("cost:", err)
		return
	}
	closed, err := cli.Close(ctx, "acme")
	if err != nil {
		fmt.Println("close:", err)
		return
	}
	fmt.Printf("submitted %d demands, cost $%.2f, closed after %d events\n",
		n, cost.Total, closed.Events)
	// Output:
	// submitted 4 demands, cost $4.50, closed after 4 events
}

// Example_unifiedStream drives two interleaved demand streams through the
// unified streaming Leaser API: every domain speaks the same
// Observe(Event) -> Decision protocol, and one generic Replay produces
// the decisions, the cost curve and the final cost.
func Example_unifiedStream() {
	cfg, err := leasing.NewLeaseConfig(
		leasing.LeaseType{Length: 1, Cost: 1},
		leasing.LeaseType{Length: 4, Cost: 2.5},
		leasing.LeaseType{Length: 16, Cost: 6},
	)
	if err != nil {
		fmt.Println("config:", err)
		return
	}
	alg, err := leasing.NewDeterministicParkingPermit(cfg)
	if err != nil {
		fmt.Println("alg:", err)
		return
	}
	lsr := leasing.NewParkingStream(alg)
	weekdays := leasing.DayEvents([]int64{0, 1, 2, 3})
	weekends := leasing.DayEvents([]int64{2, 9, 10})
	run, err := leasing.Replay(lsr, leasing.Interleave(weekdays, weekends))
	if err != nil {
		fmt.Println("replay:", err)
		return
	}
	sol := lsr.Snapshot()
	fmt.Printf("events %d, leases bought %d, cost $%.2f\n",
		len(run.Decisions), len(sol.Leases), run.Total())
	// Output:
	// events 7, leases bought 5, cost $6.50
}

// Example_reusableStream allocates a pool of two reusable capacity
// units online: each granted request occupies the lowest-indexed free
// unit for its duration and returns it, a request with both units busy
// is rejected, and uncovered grants buy leases with the per-unit
// parking-permit rule. The verifier checks the snapshot against the
// instance, and the offline oracle prices the same grant sequence with
// exact per-unit lease planning.
func Example_reusableStream() {
	cfg, err := leasing.NewLeaseConfig(
		leasing.LeaseType{Length: 1, Cost: 1},
		leasing.LeaseType{Length: 4, Cost: 2.5},
		leasing.LeaseType{Length: 16, Cost: 6},
	)
	if err != nil {
		fmt.Println("config:", err)
		return
	}
	reqs := []leasing.ReusableRequest{
		{T: 0, Dur: 3}, {T: 1, Dur: 4}, {T: 2, Dur: 2},
		{T: 6, Dur: 1}, {T: 7, Dur: 5},
	}
	inst, err := leasing.NewReusableInstance(cfg, 2, reqs)
	if err != nil {
		fmt.Println("instance:", err)
		return
	}
	lsr, err := leasing.NewReusableStream(inst)
	if err != nil {
		fmt.Println("stream:", err)
		return
	}
	run, err := leasing.Replay(lsr, leasing.UseEvents(reqs))
	if err != nil {
		fmt.Println("replay:", err)
		return
	}
	sol := lsr.Snapshot()
	if err := leasing.VerifyReusable(inst, sol); err != nil {
		fmt.Println("verify:", err)
		return
	}
	granted, rejected := 0, 0
	for _, a := range leasing.SolutionUnitAssignments(sol) {
		if a.Unit < 0 {
			rejected++
		} else {
			granted++
		}
	}
	opt, _, err := leasing.ReusableOffline(inst)
	if err != nil {
		fmt.Println("offline:", err)
		return
	}
	fmt.Printf("granted %d, rejected %d, online $%.2f, offline $%.2f\n",
		granted, rejected, run.Total(), opt)
	// Output:
	// granted 4, rejected 1, online $4.00, offline $4.00
}
