package leasing_test

// Conformance suite for the unified streaming Leaser API: every domain's
// Leaser must (1) report incremental Decision costs that sum to its
// cumulative Cost(), (2) replay deterministically — two fresh leasers over
// the same events produce identical decision streams — (3) produce a
// Snapshot that passes the domain's feasibility oracle, (4) keep the cost
// curve non-decreasing, and (5) reject payload types it does not
// understand. The suite runs entirely against the public API.

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"leasing"
	"leasing/internal/wire"
)

// conformanceCase builds a fresh Leaser (and anything verification needs)
// per call, so replays are independent.
type conformanceCase struct {
	name string
	// events is the demand stream fed to every fresh leaser.
	events []leasing.Event
	// wrongPayload is an event of a type the leaser must reject.
	wrongPayload leasing.Event
	// fresh constructs a new leaser and a snapshot verifier.
	fresh func(t *testing.T) (leasing.Leaser, func(leasing.Solution) error)
}

func conformanceConfig(t *testing.T) *leasing.LeaseConfig {
	t.Helper()
	cfg, err := leasing.NewLeaseConfig(
		leasing.LeaseType{Length: 1, Cost: 1},
		leasing.LeaseType{Length: 4, Cost: 2},
		leasing.LeaseType{Length: 16, Cost: 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func conformanceCases(t *testing.T) []conformanceCase {
	t.Helper()
	cfg := conformanceConfig(t)

	days := []int64{0, 1, 2, 3, 9, 17, 33}
	parking := conformanceCase{
		name:         "parking",
		events:       leasing.DayEvents(days),
		wrongPayload: leasing.ConnectEvent(40, 0, 1),
		fresh: func(t *testing.T) (leasing.Leaser, func(leasing.Solution) error) {
			alg, err := leasing.NewDeterministicParkingPermit(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return leasing.NewParkingStream(alg), func(sol leasing.Solution) error {
				if !cfg.CoversAll(leasing.SolutionLeases(sol), days) {
					t.Errorf("parking snapshot does not cover all demand days")
				}
				return nil
			}
		},
	}

	parkingRand := conformanceCase{
		name:         "parking-randomized",
		events:       leasing.DayEvents(days),
		wrongPayload: leasing.ElementEvent(40, 0, 1),
		fresh: func(t *testing.T) (leasing.Leaser, func(leasing.Solution) error) {
			alg, err := leasing.NewRandomizedParkingPermit(cfg, rand.New(rand.NewSource(11)))
			if err != nil {
				t.Fatal(err)
			}
			return leasing.NewParkingStream(alg), func(sol leasing.Solution) error {
				if !cfg.CoversAll(leasing.SolutionLeases(sol), days) {
					t.Errorf("randomized parking snapshot does not cover all demand days")
				}
				return nil
			}
		},
	}

	fam, err := leasing.NewSetFamily(3, [][]int{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	scCosts := [][]float64{{1, 2, 4}, {1, 2, 4}, {1, 2, 4}}
	scArrivals := []leasing.ElementArrival{
		{T: 0, Elem: 0, P: 2}, {T: 2, Elem: 1, P: 1}, {T: 5, Elem: 2, P: 1}, {T: 18, Elem: 0, P: 1},
	}
	scInst, err := leasing.NewSetCoverInstance(fam, cfg, scCosts, scArrivals, leasing.PerArrival)
	if err != nil {
		t.Fatal(err)
	}
	setcover := conformanceCase{
		name:         "setcover",
		events:       leasing.ElementEvents(scArrivals),
		wrongPayload: leasing.DayEvent(40),
		fresh: func(t *testing.T) (leasing.Leaser, func(leasing.Solution) error) {
			lsr, err := leasing.NewSetCoverStream(scInst, rand.New(rand.NewSource(7)))
			if err != nil {
				t.Fatal(err)
			}
			return lsr, func(sol leasing.Solution) error {
				return leasing.VerifySetCover(scInst, leasing.SolutionSetLeases(sol))
			}
		},
	}

	batches := [][]leasing.Point{
		{{X: 1, Y: 0}},
		{},
		{{X: 9, Y: 0}, {X: 2, Y: 1}},
		{{X: 8, Y: 2}},
	}
	facInst, err := leasing.NewFacilityInstance(cfg,
		[]leasing.Point{{X: 0, Y: 0}, {X: 10, Y: 0}},
		[][]float64{{1, 2, 5}, {1, 2, 5}},
		batches,
	)
	if err != nil {
		t.Fatal(err)
	}
	facility := conformanceCase{
		name:         "facility",
		events:       leasing.BatchEvents(batches),
		wrongPayload: leasing.WindowEvent(40, 2),
		fresh: func(t *testing.T) (leasing.Leaser, func(leasing.Solution) error) {
			lsr, err := leasing.NewFacilityStream(facInst)
			if err != nil {
				t.Fatal(err)
			}
			return lsr, func(sol leasing.Solution) error {
				cost, err := leasing.VerifyFacility(facInst,
					leasing.SolutionFacilityLeases(sol),
					leasing.SolutionFacilityAssignments(sol))
				if err != nil {
					return err
				}
				if got := lsr.Cost().Total(); math.Abs(cost-got) > 1e-6 {
					t.Errorf("facility verified cost %v != reported %v", cost, got)
				}
				return nil
			}
		},
	}

	dlClients := []leasing.DeadlineClient{{T: 0, D: 5}, {T: 3, D: 2}, {T: 9, D: 0}, {T: 20, D: 7}}
	dlInst, err := leasing.NewDeadlineInstance(cfg, dlClients)
	if err != nil {
		t.Fatal(err)
	}
	deadline := conformanceCase{
		name:         "deadline",
		events:       leasing.WindowEvents(dlClients),
		wrongPayload: leasing.BatchEvent(40),
		fresh: func(t *testing.T) (leasing.Leaser, func(leasing.Solution) error) {
			lsr, err := leasing.NewDeadlineStream(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return lsr, func(sol leasing.Solution) error {
				return leasing.VerifyDeadline(dlInst, leasing.SolutionLeases(sol))
			}
		},
	}

	scldFam, err := leasing.NewSetFamily(2, [][]int{{0, 1}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	scldArrivals := []leasing.SCLDArrival{{T: 0, Elem: 0, D: 3}, {T: 4, Elem: 1, D: 0}, {T: 9, Elem: 0, D: 2}}
	scldInst, err := leasing.NewSCLDInstance(scldFam, cfg, [][]float64{{1, 2, 4}, {1, 2, 4}}, scldArrivals)
	if err != nil {
		t.Fatal(err)
	}
	scld := conformanceCase{
		name:         "scld",
		events:       leasing.ElementWindowEvents(scldArrivals),
		wrongPayload: leasing.DayEvent(40),
		fresh: func(t *testing.T) (leasing.Leaser, func(leasing.Solution) error) {
			lsr, err := leasing.NewSCLDStream(scldInst, rand.New(rand.NewSource(3)))
			if err != nil {
				t.Fatal(err)
			}
			return lsr, func(sol leasing.Solution) error {
				return leasing.VerifySCLD(scldInst, leasing.SolutionSetLeases(sol))
			}
		},
	}

	g, err := leasing.NewGraph(4, []leasing.GraphEdge{
		{U: 0, V: 1, Weight: 1}, {U: 1, V: 2, Weight: 1},
		{U: 2, V: 3, Weight: 2}, {U: 0, V: 3, Weight: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := []leasing.SteinerRequest{{Time: 0, S: 0, T: 2}, {Time: 2, S: 1, T: 3}, {Time: 17, S: 0, T: 3}}
	stInst, err := leasing.NewSteinerInstance(g, cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	steiner := conformanceCase{
		name:         "steiner",
		events:       leasing.ConnectEvents(reqs),
		wrongPayload: leasing.ElementWindowEvent(40, 0, 1),
		fresh: func(t *testing.T) (leasing.Leaser, func(leasing.Solution) error) {
			lsr, err := leasing.NewSteinerStream(stInst)
			if err != nil {
				t.Fatal(err)
			}
			return lsr, func(sol leasing.Solution) error {
				return leasing.VerifySteiner(stInst, sol.Leases)
			}
		},
	}

	return []conformanceCase{parking, parkingRand, setcover, facility, deadline, scld, steiner}
}

// TestLeaserConformance asserts the protocol contract for every domain.
func TestLeaserConformance(t *testing.T) {
	for _, tc := range conformanceCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			lsr, verify := tc.fresh(t)
			run, err := leasing.Replay(lsr, tc.events)
			if err != nil {
				t.Fatal(err)
			}

			// Incremental costs telescope to the cumulative total.
			total := lsr.Cost().Total()
			if total <= 0 {
				t.Errorf("total cost %v, want > 0", total)
			}
			if diff := math.Abs(run.DecisionCostSum() - total); diff > 1e-6 {
				t.Errorf("decision costs sum to %v, Cost().Total() = %v", run.DecisionCostSum(), total)
			}
			if run.Total() != total {
				t.Errorf("run total %v != leaser total %v", run.Total(), total)
			}

			// The cost curve never decreases (leases are never refunded).
			prev := 0.0
			for i, p := range run.Curve {
				if p.Cost < prev-1e-9 {
					t.Errorf("curve decreases at event %d: %v after %v", i, p.Cost, prev)
				}
				prev = p.Cost
			}

			// Decisions' lease multiset matches the snapshot exactly (sorted
			// into the snapshot's canonical item/type/start order).
			var fromDecisions []leasing.ItemLease
			for _, d := range run.Decisions {
				fromDecisions = append(fromDecisions, d.Leases...)
			}
			sort.Slice(fromDecisions, func(a, b int) bool {
				x, y := fromDecisions[a], fromDecisions[b]
				if x.Item != y.Item {
					return x.Item < y.Item
				}
				if x.K != y.K {
					return x.K < y.K
				}
				return x.Start < y.Start
			})
			sol := lsr.Snapshot()
			if !reflect.DeepEqual(fromDecisions, sol.Leases) {
				t.Errorf("decision leases %v != snapshot leases %v", fromDecisions, sol.Leases)
			}

			// The snapshot passes the domain's feasibility oracle.
			if err := verify(sol); err != nil {
				t.Errorf("snapshot verification: %v", err)
			}

			// Replays are deterministic: a fresh leaser over the same events
			// yields the identical decision stream.
			lsr2, _ := tc.fresh(t)
			run2, err := leasing.Replay(lsr2, tc.events)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(run.Decisions, run2.Decisions) {
				t.Error("replay is not deterministic")
			}
			if !reflect.DeepEqual(lsr.Snapshot(), lsr2.Snapshot()) {
				t.Error("snapshots differ across replays")
			}

			// Unsupported payloads are rejected without state damage.
			lsr3, _ := tc.fresh(t)
			if _, err := lsr3.Observe(tc.wrongPayload); err == nil {
				t.Error("unsupported payload accepted")
			}
		})
	}
}

// TestLeaserRejectsTimeRegression asserts every domain refuses demands
// that move backwards in time.
func TestLeaserRejectsTimeRegression(t *testing.T) {
	for _, tc := range conformanceCases(t) {
		tc := tc
		if len(tc.events) < 2 {
			continue
		}
		t.Run(tc.name, func(t *testing.T) {
			lsr, _ := tc.fresh(t)
			last := tc.events[len(tc.events)-1]
			if _, err := lsr.Observe(last); err != nil {
				t.Fatalf("priming event: %v", err)
			}
			first := tc.events[0]
			if first.Time >= last.Time {
				t.Skip("stream has no strictly increasing times")
			}
			if _, err := lsr.Observe(first); err == nil {
				t.Error("time regression accepted")
			}
		})
	}
}

// TestLeaserConformanceBinaryRoundTrip locks the binary wire encoding
// to the conformance streams: every domain's events survive an
// encode/decode round trip canonically (a re-encode is byte-identical),
// a fresh leaser replaying the decoded events produces a run
// byte-identical to one fed the originals, and that run itself survives
// the binary run encoding the /v1/result binary path uses.
func TestLeaserConformanceBinaryRoundTrip(t *testing.T) {
	for _, tc := range conformanceCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			enc, err := wire.AppendEventsBinary(nil, tc.events)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := wire.DecodeEventsBinary(enc)
			if err != nil {
				t.Fatal(err)
			}
			re, err := wire.AppendEventsBinary(nil, dec)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc, re) {
				t.Fatal("re-encoding decoded events is not byte-identical")
			}

			lsr, _ := tc.fresh(t)
			want, err := leasing.Replay(lsr, tc.events)
			if err != nil {
				t.Fatal(err)
			}
			lsr2, _ := tc.fresh(t)
			got, err := leasing.Replay(lsr2, dec)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprintf("%#v", got) != fmt.Sprintf("%#v", want) {
				t.Errorf("replay over binary-round-tripped events diverged:\n got %#v\nwant %#v", got, want)
			}

			buf := wire.AppendRunBinary(nil, want)
			back, err := wire.DecodeRunBinary(buf)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprintf("%#v", back) != fmt.Sprintf("%#v", want) {
				t.Errorf("run binary round trip diverged:\n got %#v\nwant %#v", back, want)
			}
		})
	}
}
