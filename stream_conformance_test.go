package leasing_test

// Conformance suite for the unified streaming Leaser API: every domain's
// Leaser must (1) report incremental Decision costs that sum to its
// cumulative Cost(), (2) replay deterministically — two fresh leasers over
// the same events produce identical decision streams — (3) produce a
// Snapshot that passes the domain's feasibility oracle, (4) keep the cost
// curve non-decreasing, and (5) reject payload types it does not
// understand. The suite runs entirely against the public API.

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"leasing"
	"leasing/internal/wire"
)

// conformanceCase builds a fresh Leaser (and anything verification needs)
// per call, so replays are independent.
type conformanceCase struct {
	name string
	// domain is the wire.Domain* this case exercises; the meta-test
	// below fails when a registered wire domain has no case here.
	domain string
	// seed derives the case's random source: every randomized
	// construction draws from freshRand(seed), never from the global
	// generator, so replays are deterministic per case by construction.
	seed int64
	// events is the demand stream fed to every fresh leaser.
	events []leasing.Event
	// wrongPayload is an event of a type the leaser must reject.
	wrongPayload leasing.Event
	// fresh constructs a new leaser and a snapshot verifier; rng is a
	// fresh source seeded with the case's seed.
	fresh func(t *testing.T, rng *rand.Rand) (leasing.Leaser, func(leasing.Solution) error)
}

// freshRand is the suite's only random-source constructor: one seeded
// source per leaser construction, the same determinism rule the
// seededrand analyzer enforces on the non-test packages.
func freshRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// build constructs a fresh leaser and verifier from the case's own seed.
func (tc conformanceCase) build(t *testing.T) (leasing.Leaser, func(leasing.Solution) error) {
	return tc.fresh(t, freshRand(tc.seed))
}

func conformanceConfig(t *testing.T) *leasing.LeaseConfig {
	t.Helper()
	cfg, err := leasing.NewLeaseConfig(
		leasing.LeaseType{Length: 1, Cost: 1},
		leasing.LeaseType{Length: 4, Cost: 2},
		leasing.LeaseType{Length: 16, Cost: 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func conformanceCases(t *testing.T) []conformanceCase {
	t.Helper()
	cfg := conformanceConfig(t)

	days := []int64{0, 1, 2, 3, 9, 17, 33}
	parking := conformanceCase{
		name:         "parking",
		domain:       wire.DomainParking,
		events:       leasing.DayEvents(days),
		wrongPayload: leasing.ConnectEvent(40, 0, 1),
		fresh: func(t *testing.T, _ *rand.Rand) (leasing.Leaser, func(leasing.Solution) error) {
			alg, err := leasing.NewDeterministicParkingPermit(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return leasing.NewParkingStream(alg), func(sol leasing.Solution) error {
				if !cfg.CoversAll(leasing.SolutionLeases(sol), days) {
					t.Errorf("parking snapshot does not cover all demand days")
				}
				return nil
			}
		},
	}

	parkingRand := conformanceCase{
		name:         "parking-randomized",
		domain:       wire.DomainParkingRand,
		seed:         11,
		events:       leasing.DayEvents(days),
		wrongPayload: leasing.ElementEvent(40, 0, 1),
		fresh: func(t *testing.T, rng *rand.Rand) (leasing.Leaser, func(leasing.Solution) error) {
			alg, err := leasing.NewRandomizedParkingPermit(cfg, rng)
			if err != nil {
				t.Fatal(err)
			}
			return leasing.NewParkingStream(alg), func(sol leasing.Solution) error {
				if !cfg.CoversAll(leasing.SolutionLeases(sol), days) {
					t.Errorf("randomized parking snapshot does not cover all demand days")
				}
				return nil
			}
		},
	}

	fam, err := leasing.NewSetFamily(3, [][]int{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	scCosts := [][]float64{{1, 2, 4}, {1, 2, 4}, {1, 2, 4}}
	scArrivals := []leasing.ElementArrival{
		{T: 0, Elem: 0, P: 2}, {T: 2, Elem: 1, P: 1}, {T: 5, Elem: 2, P: 1}, {T: 18, Elem: 0, P: 1},
	}
	scInst, err := leasing.NewSetCoverInstance(fam, cfg, scCosts, scArrivals, leasing.PerArrival)
	if err != nil {
		t.Fatal(err)
	}
	setcover := conformanceCase{
		name:         "setcover",
		domain:       wire.DomainSetCover,
		seed:         7,
		events:       leasing.ElementEvents(scArrivals),
		wrongPayload: leasing.DayEvent(40),
		fresh: func(t *testing.T, rng *rand.Rand) (leasing.Leaser, func(leasing.Solution) error) {
			lsr, err := leasing.NewSetCoverStream(scInst, rng)
			if err != nil {
				t.Fatal(err)
			}
			return lsr, func(sol leasing.Solution) error {
				return leasing.VerifySetCover(scInst, leasing.SolutionSetLeases(sol))
			}
		},
	}

	batches := [][]leasing.Point{
		{{X: 1, Y: 0}},
		{},
		{{X: 9, Y: 0}, {X: 2, Y: 1}},
		{{X: 8, Y: 2}},
	}
	facInst, err := leasing.NewFacilityInstance(cfg,
		[]leasing.Point{{X: 0, Y: 0}, {X: 10, Y: 0}},
		[][]float64{{1, 2, 5}, {1, 2, 5}},
		batches,
	)
	if err != nil {
		t.Fatal(err)
	}
	facility := conformanceCase{
		name:         "facility",
		domain:       wire.DomainFacility,
		events:       leasing.BatchEvents(batches),
		wrongPayload: leasing.WindowEvent(40, 2),
		fresh: func(t *testing.T, _ *rand.Rand) (leasing.Leaser, func(leasing.Solution) error) {
			lsr, err := leasing.NewFacilityStream(facInst)
			if err != nil {
				t.Fatal(err)
			}
			return lsr, func(sol leasing.Solution) error {
				cost, err := leasing.VerifyFacility(facInst,
					leasing.SolutionFacilityLeases(sol),
					leasing.SolutionFacilityAssignments(sol))
				if err != nil {
					return err
				}
				if got := lsr.Cost().Total(); math.Abs(cost-got) > 1e-6 {
					t.Errorf("facility verified cost %v != reported %v", cost, got)
				}
				return nil
			}
		},
	}

	dlClients := []leasing.DeadlineClient{{T: 0, D: 5}, {T: 3, D: 2}, {T: 9, D: 0}, {T: 20, D: 7}}
	dlInst, err := leasing.NewDeadlineInstance(cfg, dlClients)
	if err != nil {
		t.Fatal(err)
	}
	deadline := conformanceCase{
		name:         "deadline",
		domain:       wire.DomainDeadline,
		events:       leasing.WindowEvents(dlClients),
		wrongPayload: leasing.BatchEvent(40),
		fresh: func(t *testing.T, _ *rand.Rand) (leasing.Leaser, func(leasing.Solution) error) {
			lsr, err := leasing.NewDeadlineStream(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return lsr, func(sol leasing.Solution) error {
				return leasing.VerifyDeadline(dlInst, leasing.SolutionLeases(sol))
			}
		},
	}

	scldFam, err := leasing.NewSetFamily(2, [][]int{{0, 1}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	scldArrivals := []leasing.SCLDArrival{{T: 0, Elem: 0, D: 3}, {T: 4, Elem: 1, D: 0}, {T: 9, Elem: 0, D: 2}}
	scldInst, err := leasing.NewSCLDInstance(scldFam, cfg, [][]float64{{1, 2, 4}, {1, 2, 4}}, scldArrivals)
	if err != nil {
		t.Fatal(err)
	}
	scld := conformanceCase{
		name:         "scld",
		domain:       wire.DomainSCLD,
		seed:         3,
		events:       leasing.ElementWindowEvents(scldArrivals),
		wrongPayload: leasing.DayEvent(40),
		fresh: func(t *testing.T, rng *rand.Rand) (leasing.Leaser, func(leasing.Solution) error) {
			lsr, err := leasing.NewSCLDStream(scldInst, rng)
			if err != nil {
				t.Fatal(err)
			}
			return lsr, func(sol leasing.Solution) error {
				return leasing.VerifySCLD(scldInst, leasing.SolutionSetLeases(sol))
			}
		},
	}

	g, err := leasing.NewGraph(4, []leasing.GraphEdge{
		{U: 0, V: 1, Weight: 1}, {U: 1, V: 2, Weight: 1},
		{U: 2, V: 3, Weight: 2}, {U: 0, V: 3, Weight: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := []leasing.SteinerRequest{{Time: 0, S: 0, T: 2}, {Time: 2, S: 1, T: 3}, {Time: 17, S: 0, T: 3}}
	stInst, err := leasing.NewSteinerInstance(g, cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	steiner := conformanceCase{
		name:         "steiner",
		domain:       wire.DomainSteiner,
		events:       leasing.ConnectEvents(reqs),
		wrongPayload: leasing.ElementWindowEvent(40, 0, 1),
		fresh: func(t *testing.T, _ *rand.Rand) (leasing.Leaser, func(leasing.Solution) error) {
			lsr, err := leasing.NewSteinerStream(stInst)
			if err != nil {
				t.Fatal(err)
			}
			return lsr, func(sol leasing.Solution) error {
				return leasing.VerifySteiner(stInst, sol.Leases)
			}
		},
	}

	useReqs := []leasing.ReusableRequest{
		{T: 0, Dur: 3}, {T: 1, Dur: 2}, {T: 2, Dur: 1}, {T: 5, Dur: 4},
		{T: 9, Dur: 0}, {T: 18, Dur: 2}, {T: 33, Dur: 1},
	}
	ruInst, err := leasing.NewReusableInstance(cfg, 2, useReqs)
	if err != nil {
		t.Fatal(err)
	}
	reusable := conformanceCase{
		name:         "reusable",
		domain:       wire.DomainReusable,
		events:       leasing.UseEvents(useReqs),
		wrongPayload: leasing.DayEvent(40),
		fresh: func(t *testing.T, _ *rand.Rand) (leasing.Leaser, func(leasing.Solution) error) {
			lsr, err := leasing.NewReusableStream(ruInst)
			if err != nil {
				t.Fatal(err)
			}
			return lsr, func(sol leasing.Solution) error {
				return leasing.VerifyReusable(ruInst, sol)
			}
		},
	}
	reusablePred := conformanceCase{
		name:         "reusable-predictive",
		domain:       wire.DomainReusable,
		events:       leasing.UseEvents(useReqs),
		wrongPayload: leasing.ConnectEvent(40, 0, 1),
		fresh: func(t *testing.T, _ *rand.Rand) (leasing.Leaser, func(leasing.Solution) error) {
			lsr, err := leasing.NewPredictiveReusableStream(ruInst, 0.6)
			if err != nil {
				t.Fatal(err)
			}
			return lsr, func(sol leasing.Solution) error {
				return leasing.VerifyReusable(ruInst, sol)
			}
		},
	}

	return []conformanceCase{parking, parkingRand, setcover, facility, deadline, scld, steiner, reusable, reusablePred}
}

// TestLeaserConformance asserts the protocol contract for every domain.
func TestLeaserConformance(t *testing.T) {
	for _, tc := range conformanceCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			lsr, verify := tc.build(t)
			run, err := leasing.Replay(lsr, tc.events)
			if err != nil {
				t.Fatal(err)
			}

			// Incremental costs telescope to the cumulative total.
			total := lsr.Cost().Total()
			if total <= 0 {
				t.Errorf("total cost %v, want > 0", total)
			}
			if diff := math.Abs(run.DecisionCostSum() - total); diff > 1e-6 {
				t.Errorf("decision costs sum to %v, Cost().Total() = %v", run.DecisionCostSum(), total)
			}
			if run.Total() != total {
				t.Errorf("run total %v != leaser total %v", run.Total(), total)
			}

			// The cost curve never decreases (leases are never refunded).
			prev := 0.0
			for i, p := range run.Curve {
				if p.Cost < prev-1e-9 {
					t.Errorf("curve decreases at event %d: %v after %v", i, p.Cost, prev)
				}
				prev = p.Cost
			}

			// Decisions' lease multiset matches the snapshot exactly (sorted
			// into the snapshot's canonical item/type/start order).
			var fromDecisions []leasing.ItemLease
			for _, d := range run.Decisions {
				fromDecisions = append(fromDecisions, d.Leases...)
			}
			sort.Slice(fromDecisions, func(a, b int) bool {
				x, y := fromDecisions[a], fromDecisions[b]
				if x.Item != y.Item {
					return x.Item < y.Item
				}
				if x.K != y.K {
					return x.K < y.K
				}
				return x.Start < y.Start
			})
			sol := lsr.Snapshot()
			if !reflect.DeepEqual(fromDecisions, sol.Leases) {
				t.Errorf("decision leases %v != snapshot leases %v", fromDecisions, sol.Leases)
			}

			// The snapshot passes the domain's feasibility oracle.
			if err := verify(sol); err != nil {
				t.Errorf("snapshot verification: %v", err)
			}

			// Replays are deterministic: a fresh leaser over the same events
			// yields the identical decision stream.
			lsr2, _ := tc.build(t)
			run2, err := leasing.Replay(lsr2, tc.events)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(run.Decisions, run2.Decisions) {
				t.Error("replay is not deterministic")
			}
			if !reflect.DeepEqual(lsr.Snapshot(), lsr2.Snapshot()) {
				t.Error("snapshots differ across replays")
			}

			// Unsupported payloads are rejected without state damage.
			lsr3, _ := tc.build(t)
			if _, err := lsr3.Observe(tc.wrongPayload); err == nil {
				t.Error("unsupported payload accepted")
			}
		})
	}
}

// TestLeaserRejectsTimeRegression asserts every domain refuses demands
// that move backwards in time.
func TestLeaserRejectsTimeRegression(t *testing.T) {
	for _, tc := range conformanceCases(t) {
		tc := tc
		if len(tc.events) < 2 {
			continue
		}
		t.Run(tc.name, func(t *testing.T) {
			lsr, _ := tc.build(t)
			last := tc.events[len(tc.events)-1]
			if _, err := lsr.Observe(last); err != nil {
				t.Fatalf("priming event: %v", err)
			}
			first := tc.events[0]
			if first.Time >= last.Time {
				t.Skip("stream has no strictly increasing times")
			}
			if _, err := lsr.Observe(first); err == nil {
				t.Error("time regression accepted")
			}
		})
	}
}

// TestLeaserConformanceBinaryRoundTrip locks the binary wire encoding
// to the conformance streams: every domain's events survive an
// encode/decode round trip canonically (a re-encode is byte-identical),
// a fresh leaser replaying the decoded events produces a run
// byte-identical to one fed the originals, and that run itself survives
// the binary run encoding the /v1/result binary path uses.
func TestLeaserConformanceBinaryRoundTrip(t *testing.T) {
	for _, tc := range conformanceCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			enc, err := wire.AppendEventsBinary(nil, tc.events)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := wire.DecodeEventsBinary(enc)
			if err != nil {
				t.Fatal(err)
			}
			re, err := wire.AppendEventsBinary(nil, dec)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc, re) {
				t.Fatal("re-encoding decoded events is not byte-identical")
			}

			lsr, _ := tc.build(t)
			want, err := leasing.Replay(lsr, tc.events)
			if err != nil {
				t.Fatal(err)
			}
			lsr2, _ := tc.build(t)
			got, err := leasing.Replay(lsr2, dec)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprintf("%#v", got) != fmt.Sprintf("%#v", want) {
				t.Errorf("replay over binary-round-tripped events diverged:\n got %#v\nwant %#v", got, want)
			}

			buf := wire.AppendRunBinary(nil, want)
			back, err := wire.DecodeRunBinary(buf)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprintf("%#v", back) != fmt.Sprintf("%#v", want) {
				t.Errorf("run binary round trip diverged:\n got %#v\nwant %#v", back, want)
			}
		})
	}
}

// TestConformanceCasesCoverAllWireDomains is the meta-test of the
// conformance suite: every domain registered on the wire must be
// exercised by at least one case above, and no case may claim a domain
// the wire does not register. A ninth domain added to wire.Domains()
// without a conformance case fails here, not silently.
func TestConformanceCasesCoverAllWireDomains(t *testing.T) {
	registered := map[string]bool{}
	for _, d := range wire.Domains() {
		registered[d] = true
	}
	covered := map[string]bool{}
	for _, tc := range conformanceCases(t) {
		if tc.domain == "" {
			t.Errorf("case %q declares no wire domain", tc.name)
			continue
		}
		if !registered[tc.domain] {
			t.Errorf("case %q claims unregistered domain %q", tc.name, tc.domain)
		}
		covered[tc.domain] = true
	}
	for _, d := range wire.Domains() {
		if !covered[d] {
			t.Errorf("wire domain %q has no conformance case", d)
		}
	}
}

// TestReusableCapacityConservation is the suite's property test:
// model-checked against a brute-force occupancy simulator over small
// random streams, the reusable allocator must (1) keep units in use at
// or below C at every event time, (2) return exactly one unit when a
// usage completes — equivalently, admission matches the simulator's
// free-unit count exactly — and (3) produce a snapshot the feasibility
// oracle accepts. Streams are generated from per-trial seeded sources.
func TestReusableCapacityConservation(t *testing.T) {
	cfg := conformanceConfig(t)
	for trial := 0; trial < 60; trial++ {
		rng := freshRand(1000 + int64(trial))
		capacity := 1 + rng.Intn(4)
		n := 1 + rng.Intn(30)
		reqs := make([]leasing.ReusableRequest, 0, n)
		tm := int64(rng.Intn(4))
		for len(reqs) < n {
			reqs = append(reqs, leasing.ReusableRequest{T: tm, Dur: int64(rng.Intn(7))})
			tm += int64(rng.Intn(3))
		}
		inst, err := leasing.NewReusableInstance(cfg, capacity, reqs)
		if err != nil {
			t.Fatal(err)
		}
		lsr, err := leasing.NewReusableStream(inst)
		if err != nil {
			t.Fatal(err)
		}

		// Brute-force simulator: the multiset of end times of active
		// usages. A usage [t, t+dur) is active at t' iff end > t'.
		var active []int64
		for i, r := range reqs {
			now := r.T
			kept := active[:0]
			for _, end := range active {
				if end > now {
					kept = append(kept, end)
				}
			}
			active = kept
			wantAccept := len(active) < capacity

			d, err := lsr.Observe(leasing.UseEvent(r.T, r.Dur))
			if err != nil {
				t.Fatal(err)
			}
			if len(d.Assignments) != 1 {
				t.Fatalf("trial %d request %d: %d assignments", trial, i, len(d.Assignments))
			}
			gotAccept := d.Assignments[0].Item >= 0
			if gotAccept != wantAccept {
				t.Fatalf("trial %d request %d at t=%d: leaser accept=%v, simulator free units=%d/%d",
					trial, i, r.T, gotAccept, capacity-len(active), capacity)
			}
			if gotAccept {
				dur := r.Dur
				if dur < 1 {
					dur = 1
				}
				active = append(active, r.T+dur)
			}
			if len(active) > capacity {
				t.Fatalf("trial %d request %d: %d units in use exceeds capacity %d",
					trial, i, len(active), capacity)
			}
		}
		if err := leasing.VerifyReusable(inst, lsr.Snapshot()); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
